package server

import (
	"archive/tar"
	"bytes"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"runtime/pprof"
	"strconv"
	"time"

	"xar/internal/profile"
	"xar/internal/telemetry"
)

// Flight-recorder endpoints: windowed metric history, SLO burn-rate
// states, and the one-shot diagnostic bundle. See OBSERVABILITY.md for
// the full surface with curl examples.
//
//	GET /v1/metrics/history?name=...&window_s=300&since_s=1800&max_points=200
//	GET /v1/slo
//	GET /v1/debug/bundle

// WithRecorder serves the recorder's retained time-series at
// GET /v1/metrics/history and includes history.json in debug bundles.
// The caller owns the recorder's ticking (Start, or TickAt in replays).
func WithRecorder(rec *telemetry.Recorder) Option {
	return func(s *Server) { s.recorder = rec }
}

// WithSLO serves the engine's objective states at GET /v1/slo, folds the
// worst state into /v1/healthz, and includes slo.json in debug bundles.
func WithSLO(slo *telemetry.SLOEngine) Option {
	return func(s *Server) { s.slo = slo }
}

// WithCPUProfiler includes the profiler's most recent page-triggered
// capture as cpu.pprof in debug bundles.
func WithCPUProfiler(p *profile.CPUProfiler) Option {
	return func(s *Server) { s.cpuProfiler = p }
}

// DefaultSLOs returns the serving objectives the paper's evaluation
// implies, thresholds on the DurationBuckets grid:
//
//   - search-p95: 95% of engine searches under searchP95 (the paper's
//     headline sub-millisecond search, §X Fig 4a — give live deployments
//     headroom above the benchmark's ~2.5µs).
//   - book-conflict-rate: optimistic-commit retries stay under 10% of
//     bookings (sustained conflict storms mean shard contention).
//   - http-error-rate: 5xx responses stay under 1% of requests.
//
// The server does not evaluate these itself; pass them to
// telemetry.NewSLOEngine over the recorder that snapshots this
// registry's instruments.
func DefaultSLOs(searchP95 time.Duration) []telemetry.Objective {
	return []telemetry.Objective{
		telemetry.LatencyObjective("search-p95",
			telemetry.OpDurationName, telemetry.L("op", "search"),
			searchP95.Seconds(), 0.95),
		telemetry.RatioObjective("book-conflict-rate",
			"optimistic booking conflict retries < 10% of bookings",
			"xar_book_conflict_retries_total", nil,
			telemetry.OpDurationName, telemetry.L("op", "book"), 0.10),
		telemetry.RatioObjective("http-error-rate",
			"HTTP 5xx responses < 1% of requests",
			httpRequestsName, telemetry.L("code", "5xx"),
			httpRequestsName, nil, 0.01),
		// Any invariant violation should burn through this budget and
		// page almost immediately; a deployment without an auditor has
		// no such series and the objective reports no-data (ok).
		telemetry.RatioObjective("audit-violations",
			"invariant-audit violations < 1% of sweeps",
			"xar_audit_violations_total", nil,
			"xar_audit_sweeps_total", nil, 0.01),
	}
}

func (s *Server) handleMetricsHistory(w http.ResponseWriter, r *http.Request) {
	if s.recorder == nil {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "metrics history disabled (server built without a recorder)"})
		return
	}
	q := r.URL.Query()
	// A typo'd parameter (windows_s, maxpoints) would otherwise silently
	// fall back to defaults — dashboards would chart the wrong window and
	// never know. Same contract as /v1/traces and /v1/events.
	for key := range q {
		switch key {
		case "name", "window_s", "since_s", "max_points":
		default:
			writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("unknown query parameter %q (want name, window_s, since_s, max_points)", key)})
			return
		}
	}
	var hq telemetry.HistoryQuery
	hq.Name = q.Get("name")
	var bad string
	parseSeconds := func(key string, dst *time.Duration) {
		v := q.Get(key)
		if v == "" || bad != "" {
			return
		}
		sec, err := strconv.ParseFloat(v, 64)
		// NaN fails no ordered comparison — reject it explicitly.
		if err != nil || math.IsNaN(sec) || sec <= 0 || sec > 1e9 {
			bad = key + " must be a positive number of seconds"
			return
		}
		*dst = time.Duration(sec * float64(time.Second))
	}
	parseSeconds("window_s", &hq.Window)
	parseSeconds("since_s", &hq.Since)
	if v := q.Get("max_points"); v != "" && bad == "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			bad = "max_points must be a positive integer"
		} else {
			hq.MaxPoints = n
		}
	}
	if bad != "" {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: bad})
		return
	}
	writeJSON(w, http.StatusOK, s.recorder.History(hq))
}

// SLOResponse is the GET /v1/slo body.
type SLOResponse struct {
	Status     string                `json:"status"` // worst state across objectives
	Objectives []telemetry.SLOStatus `json:"objectives"`
}

func (s *Server) handleSLO(w http.ResponseWriter, r *http.Request) {
	if s.slo == nil {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "SLOs disabled (server built without an SLO engine)"})
		return
	}
	// /v1/slo takes no parameters; reject any so a future filtered form
	// cannot be shadowed by today's ignore-everything behavior.
	for key := range r.URL.Query() {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("unknown query parameter %q (endpoint takes none)", key)})
		return
	}
	writeJSON(w, http.StatusOK, SLOResponse{
		Status:     s.slo.WorstState().String(),
		Objectives: s.slo.Statuses(),
	})
}

// sloStatus is the health string /v1/healthz reports: the worst SLO
// state when an engine is configured, "ok" otherwise.
func (s *Server) sloStatus() string {
	if s.slo == nil {
		return "ok"
	}
	return s.slo.WorstState().String()
}

func (s *Server) handleDebugBundle(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/gzip")
	w.Header().Set("Content-Disposition",
		fmt.Sprintf(`attachment; filename="xar-debug-%d.tar.gz"`, time.Now().Unix()))
	w.WriteHeader(http.StatusOK)
	// Errors past this point cannot change the status; the tar stream
	// just ends short and gunzip reports truncation.
	_ = s.WriteDebugBundle(w)
}

// WriteDebugBundle streams the one-shot diagnostic bundle — a tar.gz
// with everything a post-incident look needs, captured at one instant:
//
//	config.json          engine configuration + world dimensions
//	quality.json         match-quality funnel, slack distribution and
//	                     shadow-matcher stats (when a collector is wired)
//	memory.json          per-component memory breakdown, rides/GB, heap
//	                     stats and top allocation sites (when the engine
//	                     has memory accounting)
//	slo.json             objective states (when an SLO engine is wired)
//	audit.json           invariant-auditor state + last sweep report
//	                     (when an auditor is wired)
//	audit_timelines.json journaled timelines of the ≤10 most recent
//	                     violating rides (auditor + journal wired)
//	history.json         recorded metric time-series (when recording)
//	metrics.prom         current scrape, Prometheus text format
//	shards.json          per-shard ride occupancy (index balance)
//	traces_slowest.json  the 20 slowest retained traces (when tracing)
//	traces_errors.json   retained error traces (when tracing)
//	goroutine.pprof      goroutine profile, pprof protobuf
//	goroutines.txt       goroutine dump, human-readable
//	heap.pprof           heap profile
//	cpu.pprof            last page-triggered CPU capture (when present)
//	profiles.json        continuous-profiler capture summaries (when
//	                     the engine has Config.Profiling)
//	profile-<id>-<raw>.pprof
//	                     raw blobs of every pinned capture — the
//	                     profiles bracketing SLO pages travel with the
//	                     bundle, each loadable by `go tool pprof`
//
// It serves GET /v1/debug/bundle and the SIGQUIT dump in xarserver.
func (s *Server) WriteDebugBundle(w io.Writer) error {
	gz := gzip.NewWriter(w)
	tw := tar.NewWriter(gz)
	now := time.Now()

	addBytes := func(name string, b []byte) error {
		if err := tw.WriteHeader(&tar.Header{
			Name: name, Mode: 0o644, Size: int64(len(b)), ModTime: now,
		}); err != nil {
			return err
		}
		_, err := tw.Write(b)
		return err
	}
	addJSON := func(name string, v any) error {
		b, err := json.MarshalIndent(v, "", "  ")
		if err != nil {
			return err
		}
		return addBytes(name, append(b, '\n'))
	}
	addFrom := func(name string, fill func(io.Writer) error) error {
		var buf bytes.Buffer
		if err := fill(&buf); err != nil {
			return err
		}
		return addBytes(name, buf.Bytes())
	}

	if err := addJSON("config.json", s.eng.ConfigSummary()); err != nil {
		return err
	}
	if s.slo != nil {
		if err := addJSON("slo.json", SLOResponse{
			Status:     s.slo.WorstState().String(),
			Objectives: s.slo.Statuses(),
		}); err != nil {
			return err
		}
	}
	if s.auditor != nil {
		if err := addJSON("audit.json", map[string]any{
			"total_violations":       s.auditor.TotalViolations(),
			"recent_violating_rides": s.auditor.RecentViolatingRides(),
			"last_report":            s.auditor.LastReport(),
		}); err != nil {
			return err
		}
		if s.journal != nil {
			timelines := []TimelineResponse{}
			for _, id := range s.auditor.RecentViolatingRides() {
				if evs := s.journal.Timeline(id); evs != nil {
					timelines = append(timelines, TimelineResponse{RideID: id, Events: evs})
				}
			}
			if err := addJSON("audit_timelines.json", timelines); err != nil {
				return err
			}
		}
	}
	if s.quality != nil {
		if err := addJSON("quality.json", s.qualityResponse()); err != nil {
			return err
		}
	}
	if s.recorder != nil {
		if err := addJSON("history.json", s.recorder.History(telemetry.HistoryQuery{})); err != nil {
			return err
		}
	}
	if s.eng.MemComponents() != nil {
		rep := s.eng.LastMemReport()
		if rep == nil {
			rep = s.eng.MemSweep()
		}
		if err := addJSON("memory.json", rep); err != nil {
			return err
		}
	}
	if err := addFrom("metrics.prom", s.reg.WritePrometheus); err != nil {
		return err
	}

	view := s.eng.Index()
	shards := make([]int, view.NumShards())
	for i := range shards {
		shards[i] = view.ShardLen(i)
	}
	if err := addJSON("shards.json", map[string]any{
		"num_shards":      len(shards),
		"rides_per_shard": shards,
		"total_rides":     view.NumRides(),
	}); err != nil {
		return err
	}

	if s.tracer != nil {
		store := s.tracer.Store()
		if err := addJSON("traces_slowest.json",
			TracesResponse{Traces: telemetry.Docs(store.Slowest(20))}); err != nil {
			return err
		}
		if err := addJSON("traces_errors.json",
			TracesResponse{Traces: telemetry.Docs(store.List(telemetry.TraceFilter{Status: "error"}))}); err != nil {
			return err
		}
	}

	if err := addFrom("goroutine.pprof", func(w io.Writer) error {
		return pprof.Lookup("goroutine").WriteTo(w, 0)
	}); err != nil {
		return err
	}
	if err := addFrom("goroutines.txt", func(w io.Writer) error {
		return pprof.Lookup("goroutine").WriteTo(w, 1)
	}); err != nil {
		return err
	}
	if err := addFrom("heap.pprof", func(w io.Writer) error {
		return pprof.Lookup("heap").WriteTo(w, 0)
	}); err != nil {
		return err
	}
	if s.cpuProfiler != nil {
		if path := s.cpuProfiler.LastProfile(); path != "" {
			if b, err := os.ReadFile(path); err == nil {
				if err := addBytes("cpu.pprof", b); err != nil {
					return err
				}
			}
		}
	}
	if p := s.eng.Profiler(); p != nil {
		if err := addJSON("profiles.json", ProfileListResponse{Profiles: p.List(profile.ListFilter{})}); err != nil {
			return err
		}
		// Pinned captures are the profiles bracketing SLO pages — ship
		// their raw blobs so the post-incident look has them even after
		// the process is gone.
		for _, sum := range p.List(profile.ListFilter{PinnedOnly: true}) {
			c, ok := p.Get(sum.ID)
			if !ok {
				continue
			}
			for _, name := range c.RawNames() {
				if err := addBytes(fmt.Sprintf("profile-%d-%s.pprof", c.ID, name), c.Raw(name)); err != nil {
					return err
				}
			}
		}
	}

	if err := tw.Close(); err != nil {
		return err
	}
	return gz.Close()
}
