package server

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"xar/internal/audit"
	"xar/internal/core"
	"xar/internal/discretize"
	"xar/internal/journal"
	"xar/internal/memsize"
	"xar/internal/profile"
	"xar/internal/quality"
	"xar/internal/roadnet"
	"xar/internal/telemetry"
)

// tracedEnv is testEnv plus an always-sampling tracer shared between the
// engine and the server, a ride-event journal, an invariant auditor and
// a match-quality collector with the shadow matcher at sample rate 1 —
// the full wiring a production binary uses, at trace rate 1 so every
// request records.
type tracedEnv struct {
	*testEnv
	tracer  *telemetry.Tracer
	reg     *telemetry.Registry
	journal *journal.Journal
	auditor *audit.Auditor
	quality *quality.Collector
}

func newTracedEnv(t testing.TB) *tracedEnv {
	t.Helper()
	city, err := roadnet.GenerateCity(roadnet.DefaultCityConfig(24, 14, 42))
	if err != nil {
		t.Fatal(err)
	}
	d, err := discretize.Build(city, discretize.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	tr := telemetry.NewTracer(telemetry.TracerConfig{SampleRate: 1})
	jr := journal.New(journal.Config{Registry: reg})
	qc := quality.New(reg)
	cfg := core.DefaultConfig()
	cfg.Telemetry = reg
	cfg.Tracer = tr
	cfg.Journal = jr
	cfg.Quality = qc
	cfg.ShadowSampleRate = 1
	// On-demand sweeps only (no background worker): /v1/memory and the
	// xar_memsize_* gauges are live, and tests stay deterministic.
	cfg.Memory = memsize.NewRegistry()
	// Same policy for the continuous profiler: captures only when a test
	// asks (CaptureNow), no CPU window, no capture worker.
	cfg.Profiling = profile.New(profile.Config{Registry: reg, CPUWindow: -1})
	eng, err := core.NewEngine(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(eng.Close)
	auditor := audit.New(audit.Config{
		Target: audit.Target{
			View:    eng.Index(),
			Graph:   city.Graph,
			Epsilon: d.Epsilon(),
			Journal: jr,
			Quality: qc,
		},
		Registry:   reg,
		Logger:     slog.New(slog.NewTextHandler(io.Discard, nil)),
		TraceStore: tr.Store(),
	})
	s := httptest.NewServer(New(eng, nil,
		WithTelemetry(reg), WithTracer(tr), WithJournal(jr), WithAuditor(auditor), WithQuality(qc)).Handler())
	t.Cleanup(s.Close)
	return &tracedEnv{
		testEnv: &testEnv{srv: s, eng: eng, city: city},
		tracer:  tr,
		reg:     reg,
		journal: jr,
		auditor: auditor,
		quality: qc,
	}
}

// doRaw issues a request with optional extra headers and returns the
// response (body unconsumed) for header/trace assertions.
func (env *tracedEnv) doRaw(t testing.TB, method, path, body string, hdr map[string]string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(method, env.srv.URL+path, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func (env *tracedEnv) searchBody(t testing.TB) string {
	t.Helper()
	src, dst := env.corners()
	var created CreateRideResponse
	code := env.do(t, "POST", "/v1/rides", CreateRideRequest{
		Source: src, Dest: dst, Departure: 1000, Seats: 3, DetourLimit: 2500,
	}, &created)
	if code != http.StatusCreated {
		t.Fatalf("create ride: %d", code)
	}
	r := env.eng.Ride(1)
	g := env.city.Graph
	mid1 := toJSON(g.Point(r.Route[len(r.Route)/4]))
	mid2 := toJSON(g.Point(r.Route[3*len(r.Route)/4]))
	b, err := json.Marshal(SearchRequest{Source: mid1, Dest: mid2, Latest: 5000, WalkLimit: 900})
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// waitForTrace polls the store until id's trace is sealed. The root span
// ends after the handler returns, so a client can observe the response
// before the trace lands.
func waitForTrace(t testing.TB, tr *telemetry.Tracer, hexID string) {
	t.Helper()
	id, ok := telemetry.ParseTraceID(hexID)
	if !ok {
		t.Fatalf("bad trace id %q", hexID)
	}
	for deadline := time.Now().Add(2 * time.Second); time.Now().Before(deadline); time.Sleep(2 * time.Millisecond) {
		if _, ok := tr.Store().Get(id); ok {
			return
		}
	}
	t.Fatalf("trace %s never landed in the store", hexID)
}

// spanNamesInDoc flattens a TraceDoc's tree into a name multiset.
func spanNamesInDoc(doc telemetry.TraceDoc) map[string]int {
	names := map[string]int{}
	var walk func(sd telemetry.SpanDoc)
	walk = func(sd telemetry.SpanDoc) {
		names[sd.Name]++
		for _, c := range sd.Children {
			walk(c)
		}
	}
	for _, r := range doc.Tree {
		walk(r)
	}
	return names
}

// TestTracesEndpoint drives a search over HTTP and asserts the trace is
// browsable: listed under op=search (the engine span inside the HTTP
// root), and resolvable by ID to a tree that descends route → search →
// side_lookup + per-shard fan-out.
func TestTracesEndpoint(t *testing.T) {
	env := newTracedEnv(t)
	body := env.searchBody(t)
	resp := env.doRaw(t, "POST", "/v1/search", body, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("search: %d", resp.StatusCode)
	}
	traceID := resp.Header.Get("X-Xar-Trace-Id")
	if len(traceID) != 32 {
		t.Fatalf("X-Xar-Trace-Id = %q", traceID)
	}
	waitForTrace(t, env.tracer, traceID)

	var list TracesResponse
	if code := env.do(t, "GET", "/v1/traces?op=search", nil, &list); code != http.StatusOK {
		t.Fatalf("list traces: %d", code)
	}
	var doc *telemetry.TraceDoc
	for i := range list.Traces {
		if list.Traces[i].TraceID == traceID {
			doc = &list.Traces[i]
		}
	}
	if doc == nil {
		t.Fatalf("search trace %s not in op=search listing (%d traces)", traceID, len(list.Traces))
	}
	if doc.Root != "/v1/search" {
		t.Fatalf("root = %q, want /v1/search", doc.Root)
	}

	var byID telemetry.TraceDoc
	if code := env.do(t, "GET", "/v1/traces/"+traceID, nil, &byID); code != http.StatusOK {
		t.Fatalf("get trace: %d", code)
	}
	names := spanNamesInDoc(byID)
	if names["/v1/search"] != 1 || names["search"] != 1 || names["side_lookup"] != 1 {
		t.Fatalf("span names = %v", names)
	}
	if names["search_shard"] == 0 {
		t.Fatalf("no per-shard fan-out spans: %v", names)
	}
	if byID.Status != "ok" {
		t.Fatalf("status = %q", byID.Status)
	}

	// The HTTP root carries the response status as an attribute.
	if got := byID.Tree[0].Attrs["status"]; got != float64(200) {
		t.Fatalf("root status attr = %v", got)
	}
}

// TestTracesEndpointValidation covers the error paths: bad filters, bad
// IDs, unknown IDs.
func TestTracesEndpointValidation(t *testing.T) {
	env := newTracedEnv(t)
	for _, path := range []string{
		"/v1/traces?min_ms=potato",
		"/v1/traces?min_ms=-1",
		"/v1/traces?min_ms=NaN",
		"/v1/traces?min_ms=Inf",
		"/v1/traces?min_ms=-Inf",
		"/v1/traces?status=weird",
		"/v1/traces?limit=0",
		"/v1/traces?limit=-3",
		"/v1/traces?limit=10001",
		"/v1/traces?min_mss=5",
		"/v1/traces?op=search&bogus=1",
		"/v1/traces/nothex",
	} {
		resp := env.doRaw(t, "GET", path, "", nil)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("GET %s = %d, want 400", path, resp.StatusCode)
			continue
		}
		// Every rejection is a JSON error body, not a bare status.
		var body errorBody
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil || body.Error == "" {
			t.Errorf("GET %s: body not a JSON error (%v, %+v)", path, err, body)
		}
	}
	// Valid filters at the boundary still pass.
	for _, path := range []string{
		"/v1/traces?limit=10000",
		"/v1/traces?min_ms=0",
		"/v1/traces?op=search&min_ms=1.5&status=ok&limit=5",
	} {
		if resp := env.doRaw(t, "GET", path, "", nil); resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s = %d, want 200", path, resp.StatusCode)
		}
	}
	if resp := env.doRaw(t, "GET", "/v1/traces/0123456789abcdef0123456789abcdef", "", nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown trace = %d, want 404", resp.StatusCode)
	}
}

// TestTracesDisabled: without a tracer the endpoints 404 but every
// response still carries a minted X-Xar-Trace-Id for log correlation.
func TestTracesDisabled(t *testing.T) {
	env := newTestEnv(t)
	resp, err := http.Get(env.srv.URL + "/v1/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/v1/traces without tracer = %d, want 404", resp.StatusCode)
	}
	hresp, err := http.Get(env.srv.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	if id := hresp.Header.Get("X-Xar-Trace-Id"); len(id) != 32 {
		t.Fatalf("X-Xar-Trace-Id without tracer = %q, want minted ID", id)
	}
}

// TestTraceparentHonoured: a sampled upstream traceparent forces
// recording under the caller's trace ID even past head sampling, and the
// remote parent span ID is preserved on the root.
func TestTraceparentHonoured(t *testing.T) {
	env := newTracedEnv(t)
	upstream := "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	resp := env.doRaw(t, "GET", "/v1/healthz", "", map[string]string{"traceparent": upstream})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}
	const wantID = "4bf92f3577b34da6a3ce929d0e0e4736"
	if got := resp.Header.Get("X-Xar-Trace-Id"); got != wantID {
		t.Fatalf("X-Xar-Trace-Id = %q, want upstream trace %q", got, wantID)
	}
	waitForTrace(t, env.tracer, wantID)
	id, _ := telemetry.ParseTraceID(wantID)
	td, ok := env.tracer.Store().Get(id)
	if !ok {
		t.Fatal("upstream-sampled trace not recorded")
	}
	if td.Spans[len(td.Spans)-1].Parent.String() != "00f067aa0ba902b7" {
		t.Fatalf("root parent = %s, want remote parent", td.Spans[len(td.Spans)-1].Parent)
	}

	// A malformed traceparent must not break the request; a fresh ID is
	// minted instead.
	resp = env.doRaw(t, "GET", "/v1/healthz", "", map[string]string{"traceparent": "garbage"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz with bad traceparent: %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Xar-Trace-Id"); len(got) != 32 || got == wantID {
		t.Fatalf("bad traceparent should mint a fresh ID, got %q", got)
	}
}

// TestTraceparentUnsampledNotRecorded: flags=00 leaves the recording
// decision to head sampling; with an effectively-never sampler the trace
// must not record, but the upstream ID is still echoed for correlation.
func TestTraceparentUnsampledNotRecorded(t *testing.T) {
	city, err := roadnet.GenerateCity(roadnet.DefaultCityConfig(24, 14, 42))
	if err != nil {
		t.Fatal(err)
	}
	d, err := discretize.Build(city, discretize.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.NewEngine(d, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	tr := telemetry.NewTracer(telemetry.TracerConfig{SampleRate: 1 << 20})
	tr.Sample() // burn the sequence's first always-sampled slot
	s := httptest.NewServer(New(eng, nil, WithTracer(tr)).Handler())
	defer s.Close()

	upstream := "00-aaaabbbbccccddddeeeeffff00001111-00f067aa0ba902b7-00"
	req, _ := http.NewRequest("GET", s.URL+"/v1/healthz", nil)
	req.Header.Set("traceparent", upstream)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("X-Xar-Trace-Id"); got != "aaaabbbbccccddddeeeeffff00001111" {
		t.Fatalf("X-Xar-Trace-Id = %q, want upstream ID", got)
	}
	if n := tr.Store().Len(); n != 0 {
		t.Fatalf("unsampled traceparent recorded %d traces", n)
	}
}

// TestExemplarResolvesOverHTTP is acceptance criterion 3's metrics half:
// after traffic, a bucket line in /v1/metrics/prom carries a trace-ID
// exemplar and that ID resolves via /v1/traces/{id}.
func TestExemplarResolvesOverHTTP(t *testing.T) {
	env := newTracedEnv(t)
	body := env.searchBody(t)
	for i := 0; i < 3; i++ {
		if resp := env.doRaw(t, "POST", "/v1/search", body, nil); resp.StatusCode != http.StatusOK {
			t.Fatalf("search: %d", resp.StatusCode)
		}
	}
	resp := env.doRaw(t, "GET", "/v1/metrics/prom", "", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %d", resp.StatusCode)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	re := regexp.MustCompile(`xar_op_duration_seconds_bucket\{[^}]*op="search"[^}]*\} \d+ # \{trace_id="([0-9a-f]{32})"\}`)
	m := re.FindStringSubmatch(text)
	if m == nil {
		t.Fatalf("no search bucket exemplar in exposition:\n%s", firstLines(text, 40))
	}
	waitForTrace(t, env.tracer, m[1])
	var doc telemetry.TraceDoc
	if code := env.do(t, "GET", "/v1/traces/"+m[1], nil, &doc); code != http.StatusOK {
		t.Fatalf("exemplar trace %s does not resolve: %d", m[1], code)
	}
	if doc.Root != "/v1/search" {
		t.Fatalf("exemplar trace root = %q", doc.Root)
	}
}

// TestAccessLogCarriesTraceID: the structured access-log record includes
// the same trace_id echoed to the client.
func TestAccessLogCarriesTraceID(t *testing.T) {
	city, err := roadnet.GenerateCity(roadnet.DefaultCityConfig(24, 14, 42))
	if err != nil {
		t.Fatal(err)
	}
	d, err := discretize.Build(city, discretize.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.NewEngine(d, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var logBuf syncBuffer
	logger := slog.New(slog.NewJSONHandler(&logBuf, nil))
	s := httptest.NewServer(New(eng, nil, WithAccessLog(logger)).Handler())
	defer s.Close()

	resp, err := http.Get(s.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	echoed := resp.Header.Get("X-Xar-Trace-Id")

	// The access-log write happens after the handler returns, so the
	// client can observe the response first; wait for the line.
	var line string
	for deadline := time.Now().Add(2 * time.Second); time.Now().Before(deadline); time.Sleep(5 * time.Millisecond) {
		if line = strings.TrimSpace(logBuf.String()); line != "" {
			break
		}
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(line), &rec); err != nil {
		t.Fatalf("access log not JSON: %v\n%q", err, line)
	}
	if got, _ := rec["trace_id"].(string); got != echoed || len(echoed) != 32 {
		t.Fatalf("access log trace_id = %q, header = %q", got, echoed)
	}
}

// syncBuffer is a mutex-guarded bytes.Buffer (the log writer and the
// test goroutine race otherwise).
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func firstLines(s string, n int) string {
	lines := strings.SplitN(s, "\n", n+1)
	if len(lines) > n {
		lines = lines[:n]
	}
	return strings.Join(lines, "\n")
}
