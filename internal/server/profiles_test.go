package server

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
	"net/http"
	"testing"

	"xar/internal/profile"
)

// profCaptures takes n on-demand captures through the traced env's
// engine profiler, with a burst of HTTP traffic before each so the
// deltas have content.
func profCaptures(t testing.TB, env *tracedEnv, n int) {
	t.Helper()
	body := env.searchBody(t)
	for i := 0; i < n; i++ {
		for j := 0; j < 50; j++ {
			resp := env.doRaw(t, "POST", "/v1/search", body, nil)
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		if c := env.eng.Profiler().CaptureNow(); c == nil {
			t.Fatal("CaptureNow returned nil")
		}
	}
}

// TestProfilesList exercises GET /v1/profiles: summaries for every
// capture in the rings, the pinned filter, and the limit filter.
func TestProfilesList(t *testing.T) {
	env := newTracedEnv(t)
	profCaptures(t, env, 3)

	var list ProfileListResponse
	if code := env.do(t, "GET", "/v1/profiles", nil, &list); code != http.StatusOK {
		t.Fatalf("list: %d", code)
	}
	if len(list.Profiles) != 3 {
		t.Fatalf("listed %d captures, want 3", len(list.Profiles))
	}
	// Newest first, every summary carrying its delta kinds.
	if list.Profiles[0].ID <= list.Profiles[1].ID {
		t.Errorf("list not newest-first: %d then %d", list.Profiles[0].ID, list.Profiles[1].ID)
	}
	if len(list.Profiles[0].Kinds) == 0 {
		t.Errorf("summary %d carries no kinds", list.Profiles[0].ID)
	}

	if code := env.do(t, "GET", "/v1/profiles?limit=1", nil, &list); code != http.StatusOK || len(list.Profiles) != 1 {
		t.Fatalf("limit=1: code %d, %d profiles", code, len(list.Profiles))
	}

	// Nothing pinned yet; pin the newest and the filter must find it.
	if code := env.do(t, "GET", "/v1/profiles?pinned=true", nil, &list); code != http.StatusOK || len(list.Profiles) != 0 {
		t.Fatalf("pinned pre-pin: code %d, %d profiles", code, len(list.Profiles))
	}
	env.eng.Profiler().PinLatest("endpoint test")
	if code := env.do(t, "GET", "/v1/profiles?pinned=true", nil, &list); code != http.StatusOK || len(list.Profiles) != 1 {
		t.Fatalf("pinned post-pin: code %d, %d profiles", code, len(list.Profiles))
	}
	if !list.Profiles[0].Pinned || list.Profiles[0].PinReason != "endpoint test" {
		t.Errorf("pinned summary: %+v", list.Profiles[0])
	}
}

// TestProfileByID exercises GET /v1/profiles/{id}: the full capture,
// kind narrowing, and the raw pprof export (which must gunzip — the
// blob `go tool pprof` loads).
func TestProfileByID(t *testing.T) {
	env := newTracedEnv(t)
	profCaptures(t, env, 2)

	var c profile.Capture
	if code := env.do(t, "GET", "/v1/profiles/2", nil, &c); code != http.StatusOK {
		t.Fatalf("get: %d", code)
	}
	if c.ID != 2 || len(c.Profiles) == 0 {
		t.Fatalf("capture: id %d, %d folds", c.ID, len(c.Profiles))
	}

	var f profile.Folded
	if code := env.do(t, "GET", "/v1/profiles/2?kind="+profile.KindHeapAlloc, nil, &f); code != http.StatusOK {
		t.Fatalf("kind get: %d", code)
	}
	if f.Kind != profile.KindHeapAlloc {
		t.Fatalf("fold kind %q", f.Kind)
	}

	resp := env.doRaw(t, "GET", "/v1/profiles/2?format=pprof&kind="+profile.KindHeapInuse, "", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("raw export: %d", resp.StatusCode)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	gz, err := gzip.NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("raw export is not the gzipped protobuf pprof expects: %v", err)
	}
	if _, err := io.ReadAll(gz); err != nil {
		t.Fatalf("raw export gunzip: %v", err)
	}

	// Misses and malformed requests.
	for path, want := range map[string]int{
		"/v1/profiles/9999":            http.StatusNotFound, // evicted / never taken
		"/v1/profiles/2?kind=bogus":    http.StatusNotFound,
		"/v1/profiles/2?format=potato": http.StatusBadRequest,
		"/v1/profiles/notanid":         http.StatusBadRequest,
	} {
		if code := env.do(t, "GET", path, nil, nil); code != want {
			t.Errorf("GET %s = %d, want %d", path, code, want)
		}
	}
}

// TestProfileDiff exercises GET /v1/profiles/diff: the symbol-level
// delta between two captures of a delta kind.
func TestProfileDiff(t *testing.T) {
	env := newTracedEnv(t)
	profCaptures(t, env, 2)

	var d profile.Diff
	path := fmt.Sprintf("/v1/profiles/diff?from=1&to=2&kind=%s", profile.KindHeapAlloc)
	if code := env.do(t, "GET", path, nil, &d); code != http.StatusOK {
		t.Fatalf("diff: %d", code)
	}
	if d.FromID != 1 || d.ToID != 2 || d.Kind != profile.KindHeapAlloc {
		t.Fatalf("diff header: %+v", d)
	}
	if len(d.Rows) == 0 {
		t.Fatal("diff between two loaded captures has no symbol rows")
	}
	for _, r := range d.Rows {
		if r.Func == "" {
			t.Fatalf("diff row without a symbol: %+v", r)
		}
	}

	if code := env.do(t, "GET", "/v1/profiles/diff?from=1&to=9999", nil, nil); code != http.StatusNotFound {
		t.Errorf("diff against a missing capture = %d, want 404", code)
	}
	if code := env.do(t, "GET", "/v1/profiles/diff?from=1", nil, nil); code != http.StatusBadRequest {
		t.Errorf("diff without to = %d, want 400", code)
	}
}

// TestProfilesUnknownParamsAnd404 pins the shared endpoint contracts:
// typo'd query parameters are 400s on all three routes, and a server
// whose engine has no profiler serves 404 with a hint, parameter
// validation notwithstanding.
func TestProfilesUnknownParamsAnd404(t *testing.T) {
	env := newTracedEnv(t)
	profCaptures(t, env, 1)

	for _, path := range []string{
		"/v1/profiles?pined=true",
		"/v1/profiles/1?knd=cpu",
		"/v1/profiles/diff?from=1&to=1&kinds=cpu",
	} {
		if code := env.do(t, "GET", path, nil, nil); code != http.StatusBadRequest {
			t.Errorf("GET %s = %d, want 400", path, code)
		}
	}

	// Disabled-profiler 404 wins over parameter validation, matching
	// /v1/metrics/history's contract.
	bare := newTestEnv(t)
	for _, path := range []string{
		"/v1/profiles", "/v1/profiles/1", "/v1/profiles/diff?bogus=1",
	} {
		if code := bare.do(t, "GET", path, nil, nil); code != http.StatusNotFound {
			t.Errorf("profiler-less GET %s = %d, want 404", path, code)
		}
	}
}
