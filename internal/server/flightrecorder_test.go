package server

import (
	"archive/tar"
	"compress/gzip"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"xar/internal/core"
	"xar/internal/discretize"
	"xar/internal/memsize"
	"xar/internal/profile"
	"xar/internal/quality"
	"xar/internal/roadnet"
	"xar/internal/telemetry"
)

// recorderEnv is a testEnv with the full flight-recorder stack wired:
// shared registry, tracer, recorder (manual ticking), SLO engine.
type recorderEnv struct {
	*testEnv
	reg *telemetry.Registry
	rec *telemetry.Recorder
	slo *telemetry.SLOEngine
	now float64
}

func newRecorderEnv(t testing.TB) *recorderEnv {
	t.Helper()
	city, err := roadnet.GenerateCity(roadnet.DefaultCityConfig(24, 14, 42))
	if err != nil {
		t.Fatal(err)
	}
	d, err := discretize.Build(city, discretize.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	tracer := telemetry.NewTracer(telemetry.TracerConfig{SampleRate: 1})
	qc := quality.New(reg)
	cfg := core.DefaultConfig()
	cfg.Telemetry = reg
	cfg.Tracer = tracer
	cfg.Quality = qc
	cfg.Memory = memsize.NewRegistry()
	// On-demand captures only (no background worker, no CPU window):
	// /v1/profiles and debug bundles have content, tests stay
	// deterministic.
	cfg.Profiling = profile.New(profile.Config{Registry: reg, CPUWindow: -1})
	eng, err := core.NewEngine(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rec := telemetry.NewRecorder(reg, telemetry.RecorderConfig{
		Interval:  10 * time.Second,
		Retention: time.Hour,
	})
	slo := telemetry.NewSLOEngine(rec, telemetry.SLOConfig{},
		DefaultSLOs(10*time.Millisecond)...)
	s := httptest.NewServer(New(eng, core.NewSocialGraph(),
		WithTelemetry(reg), WithTracer(tracer),
		WithRecorder(rec), WithSLO(slo), WithQuality(qc)).Handler())
	t.Cleanup(s.Close)
	return &recorderEnv{
		testEnv: &testEnv{srv: s, eng: eng, city: city},
		reg:     reg, rec: rec, slo: slo,
		now: 100_000,
	}
}

// tick advances 10s of simulated time after recording n search
// observations of d each.
func (env *recorderEnv) tick(n int, d time.Duration) {
	h := telemetry.OpDuration(env.reg, "search")
	for i := 0; i < n; i++ {
		h.ObserveDuration(d)
	}
	env.rec.TickAt(env.now)
	env.now += 10
}

// TestMetricsHistoryEndpoint drives ≥30 minutes of simulated load
// through the recorder and checks the endpoint serves windowed rates and
// rolling quantiles over it — acceptance criterion 3, first half.
func TestMetricsHistoryEndpoint(t *testing.T) {
	env := newRecorderEnv(t)
	// 35 minutes at 10s ticks: fast phase, then a slow phase the rolling
	// quantiles must resolve.
	for i := 0; i < 180; i++ { // 30 min healthy
		env.tick(50, 500*time.Microsecond)
	}
	for i := 0; i < 30; i++ { // +5 min degraded
		env.tick(50, 50*time.Millisecond)
	}

	var dump telemetry.HistoryDump
	code := env.do(t, "GET",
		"/v1/metrics/history?name=xar_op_duration_seconds&window_s=300", nil, &dump)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if dump.Snapshots < 180 {
		t.Fatalf("snapshots = %d, want ≥ 180 (30 min at 10s)", dump.Snapshots)
	}
	var search *telemetry.HistorySeries
	for i := range dump.Series {
		if dump.Series[i].Labels["op"] == "search" {
			search = &dump.Series[i]
		}
	}
	if search == nil {
		t.Fatal("no op=search series in history")
	}
	if len(search.Points) < 180 {
		t.Fatalf("points = %d, want ≥ 180", len(search.Points))
	}
	span := search.Points[len(search.Points)-1].Unix - search.Points[0].Unix
	if span < 30*60 {
		t.Fatalf("history spans %.0fs, want ≥ 1800s", span)
	}
	// Windowed rate: 50 obs / 10s = 5/s under a steady load.
	mid := search.Points[100]
	if mid.Rate == nil || *mid.Rate < 4.5 || *mid.Rate > 5.5 {
		t.Fatalf("mid-history rate = %v, want ≈5/s", mid.Rate)
	}
	// Rolling p95 resolves the phase change: early windows ≈0.5ms, the
	// final window ≈50ms.
	early, last := search.Points[100], search.Points[len(search.Points)-1]
	if early.P95 == nil || *early.P95 > 0.005 {
		t.Fatalf("healthy-phase p95 = %v, want ≈0.0005", early.P95)
	}
	if last.P95 == nil || *last.P95 < 0.01 {
		t.Fatalf("degraded-phase p95 = %v, want ≈0.05", last.P95)
	}

	// Unfiltered query also serves HTTP and runtime series.
	code = env.do(t, "GET", "/v1/metrics/history", nil, &dump)
	if code != http.StatusOK || len(dump.Series) < 2 {
		t.Fatalf("unfiltered history: status %d, %d series", code, len(dump.Series))
	}
}

func TestMetricsHistoryValidation(t *testing.T) {
	env := newRecorderEnv(t)
	for _, q := range []string{
		"?window_s=potato", "?window_s=-5", "?window_s=0", "?window_s=NaN",
		"?since_s=abc", "?max_points=0", "?max_points=-1", "?max_points=1.5",
	} {
		if code := env.do(t, "GET", "/v1/metrics/history"+q, nil, nil); code != http.StatusBadRequest {
			t.Errorf("GET /v1/metrics/history%s = %d, want 400", q, code)
		}
	}
	// Absent recorder → 404.
	bare := newTestEnv(t)
	if code := bare.do(t, "GET", "/v1/metrics/history", nil, nil); code != http.StatusNotFound {
		t.Fatalf("recorder-less history = %d, want 404", code)
	}
}

// TestFlightRecorderUnknownParams pins the same contract /v1/traces and
// /v1/events enforce: a typo'd query parameter is a 400, not a silent
// fall-back to defaults (a dashboard charting "windows_s=300" would
// otherwise quietly show the whole retention window).
func TestFlightRecorderUnknownParams(t *testing.T) {
	env := newRecorderEnv(t)
	env.tick(10, time.Millisecond)

	for _, q := range []string{
		"?windows_s=300", "?maxpoints=10", "?name=x&bogus=1", "?limit=5",
	} {
		if code := env.do(t, "GET", "/v1/metrics/history"+q, nil, nil); code != http.StatusBadRequest {
			t.Errorf("GET /v1/metrics/history%s = %d, want 400", q, code)
		}
	}
	// Known parameters in combination still work.
	var dump telemetry.HistoryDump
	if code := env.do(t, "GET", "/v1/metrics/history?name=xar_op_duration_seconds&window_s=60&since_s=600&max_points=5", nil, &dump); code != http.StatusOK {
		t.Fatalf("valid history query = %d, want 200", code)
	}

	for _, q := range []string{"?window_s=300", "?verbose=1", "?status=page"} {
		if code := env.do(t, "GET", "/v1/slo"+q, nil, nil); code != http.StatusBadRequest {
			t.Errorf("GET /v1/slo%s = %d, want 400", q, code)
		}
	}
	var slo SLOResponse
	if code := env.do(t, "GET", "/v1/slo", nil, &slo); code != http.StatusOK {
		t.Fatalf("bare /v1/slo = %d, want 200", code)
	}
	// The disabled-endpoint 404 must win over parameter validation, as on
	// the recorder-less history endpoint.
	bare := newTestEnv(t)
	if code := bare.do(t, "GET", "/v1/slo?bogus=1", nil, nil); code != http.StatusNotFound {
		t.Fatalf("slo-less /v1/slo?bogus=1 = %d, want 404", code)
	}
}

// TestSLOTransitionsToPage injects a latency spike and watches /v1/slo
// and /v1/healthz move ok → page — acceptance criterion 3, second half.
func TestSLOTransitionsToPage(t *testing.T) {
	env := newRecorderEnv(t)

	// 31 min healthy: fills both burn windows.
	for i := 0; i < 186; i++ {
		env.tick(50, 500*time.Microsecond)
	}
	var slo SLOResponse
	if code := env.do(t, "GET", "/v1/slo", nil, &slo); code != http.StatusOK {
		t.Fatalf("slo status %d", code)
	}
	if slo.Status != "ok" {
		t.Fatalf("pre-spike SLO status = %q, want ok (%+v)", slo.Status, slo.Objectives)
	}
	var h HealthResponse
	env.do(t, "GET", "/v1/healthz", nil, &h)
	if h.Status != "ok" {
		t.Fatalf("pre-spike health = %q, want ok", h.Status)
	}

	// Spike: every search lands at 100ms, 10× past the 10ms objective.
	for i := 0; i < 18; i++ { // 3 minutes
		env.tick(50, 100*time.Millisecond)
	}
	if code := env.do(t, "GET", "/v1/slo", nil, &slo); code != http.StatusOK {
		t.Fatalf("slo status %d", code)
	}
	if slo.Status != "page" {
		t.Fatalf("post-spike SLO status = %q, want page (%+v)", slo.Status, slo.Objectives)
	}
	found := false
	for _, o := range slo.Objectives {
		if o.Name == "search-p95" {
			found = true
			if o.State.String() != "page" {
				t.Fatalf("search-p95 state = %v, want page (burn short=%v long=%v)",
					o.State, o.BurnShort, o.BurnLong)
			}
			if o.BurnShort < 10 {
				t.Fatalf("burn short = %v, want ≥ 10", o.BurnShort)
			}
		}
	}
	if !found {
		t.Fatal("no search-p95 objective in /v1/slo")
	}
	env.do(t, "GET", "/v1/healthz", nil, &h)
	if h.Status != "page" {
		t.Fatalf("post-spike health = %q, want page", h.Status)
	}

	// SLO-less server keeps the static ok and 404s /v1/slo.
	bare := newTestEnv(t)
	if code := bare.do(t, "GET", "/v1/slo", nil, nil); code != http.StatusNotFound {
		t.Fatalf("slo-less /v1/slo = %d, want 404", code)
	}
}

// TestDebugBundle exercises GET /v1/debug/bundle end-to-end: real
// traffic, then untar and verify every expected member — acceptance
// criterion 5.
func TestDebugBundle(t *testing.T) {
	env := newRecorderEnv(t)
	src, dst := env.corners()

	// Real traffic so traces and metrics have content.
	var cr CreateRideResponse
	if code := env.do(t, "POST", "/v1/rides", CreateRideRequest{
		Source: src, Dest: dst, Departure: 1000, DetourLimit: 2500,
	}, &cr); code != http.StatusCreated {
		t.Fatalf("create status %d", code)
	}
	var sr SearchResponse
	env.do(t, "POST", "/v1/search", SearchRequest{
		Source: src, Dest: dst, Earliest: 0, Latest: 7200, WalkLimit: 900,
	}, &sr)
	// An engine-level failure (unknown ride) marks its trace as errored.
	env.do(t, "POST", "/v1/bookings", BookRequest{
		Match: MatchJSON{RideID: 999999},
		Request: SearchRequest{
			Source: src, Dest: dst, Earliest: 0, Latest: 7200, WalkLimit: 900,
		},
	}, nil)
	env.tick(10, time.Millisecond)
	env.tick(10, time.Millisecond)
	// Two on-demand captures, the newest pinned — the bundle must carry
	// the summary list plus the pinned capture's raw blobs.
	env.eng.Profiler().CaptureNow()
	env.eng.Profiler().CaptureNow()
	env.eng.Profiler().PinLatest("bundle test")

	resp, err := http.Get(env.srv.URL + "/v1/debug/bundle")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("bundle status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/gzip" {
		t.Fatalf("content type %q", ct)
	}

	gz, err := gzip.NewReader(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	members := map[string][]byte{}
	tr := tar.NewReader(gz)
	for {
		hdr, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		b, err := io.ReadAll(tr)
		if err != nil {
			t.Fatal(err)
		}
		members[hdr.Name] = b
	}

	for _, want := range []string{
		"config.json", "quality.json", "slo.json", "history.json",
		"memory.json", "metrics.prom", "shards.json",
		"traces_slowest.json", "traces_errors.json", "goroutine.pprof",
		"goroutines.txt", "heap.pprof", "profiles.json",
	} {
		if len(members[want]) == 0 {
			t.Errorf("bundle member %s missing or empty", want)
		}
	}

	// The pinned capture's raw blobs ride along for post-incident pprof.
	var plist ProfileListResponse
	if err := json.Unmarshal(members["profiles.json"], &plist); err != nil {
		t.Fatalf("profiles.json: %v", err)
	}
	if len(plist.Profiles) < 2 {
		t.Errorf("profiles.json lists %d captures, want >= 2", len(plist.Profiles))
	}
	pinnedRaw := 0
	for name, b := range members {
		if strings.HasPrefix(name, "profile-") && strings.HasSuffix(name, ".pprof") && len(b) > 0 {
			pinnedRaw++
		}
	}
	if pinnedRaw == 0 {
		t.Error("no pinned profile-<id>-<name>.pprof members in the bundle")
	}

	// Member sanity: config carries the world, slo parses with states,
	// history holds the ticks, traces include the error trace.
	var cfg map[string]any
	if err := json.Unmarshal(members["config.json"], &cfg); err != nil {
		t.Fatalf("config.json: %v", err)
	}
	if cfg["index_shards"].(float64) < 1 || cfg["road_nodes"].(float64) < 100 {
		t.Fatalf("config.json implausible: %v", cfg)
	}
	var qr QualityResponse
	if err := json.Unmarshal(members["quality.json"], &qr); err != nil {
		t.Fatalf("quality.json: %v", err)
	}
	if qr.CandidatesExamined == 0 || qr.Funnel["matched"] == 0 {
		t.Fatalf("quality.json funnel empty after a matching search: %+v", qr.Funnel)
	}
	var slo SLOResponse
	if err := json.Unmarshal(members["slo.json"], &slo); err != nil {
		t.Fatalf("slo.json: %v", err)
	}
	if len(slo.Objectives) != 4 {
		t.Fatalf("slo.json objectives = %d, want 4", len(slo.Objectives))
	}
	var hist telemetry.HistoryDump
	if err := json.Unmarshal(members["history.json"], &hist); err != nil {
		t.Fatalf("history.json: %v", err)
	}
	if hist.Snapshots != 2 {
		t.Fatalf("history.json snapshots = %d, want 2", hist.Snapshots)
	}
	var errTraces TracesResponse
	if err := json.Unmarshal(members["traces_errors.json"], &errTraces); err != nil {
		t.Fatalf("traces_errors.json: %v", err)
	}
	if len(errTraces.Traces) == 0 {
		t.Fatal("traces_errors.json has no traces despite a failed booking")
	}
	var shards map[string]any
	if err := json.Unmarshal(members["shards.json"], &shards); err != nil {
		t.Fatalf("shards.json: %v", err)
	}
	if shards["total_rides"].(float64) != 1 {
		t.Fatalf("shards.json total_rides = %v, want 1", shards["total_rides"])
	}
	var mem core.MemoryReport
	if err := json.Unmarshal(members["memory.json"], &mem); err != nil {
		t.Fatalf("memory.json: %v", err)
	}
	if len(mem.Components) == 0 || mem.TrackedTotalBytes == 0 {
		t.Fatalf("memory.json has no component breakdown: %+v", mem)
	}
	// goroutines.txt is the text dump; must mention this test's server.
	if len(members["goroutines.txt"]) < 100 {
		t.Fatalf("goroutines.txt suspiciously small: %d bytes", len(members["goroutines.txt"]))
	}
}
