package server

import (
	"fmt"
	"net/http"
	"strconv"
)

// GET /v1/memory serves the engine's memory observability report: the
// per-component retained-byte breakdown from the last accounting sweep,
// the rides-per-GB frontier, runtime heap/GC statistics, and the top
// allocation sites with churn deltas. Available when the engine was
// built with Config.Memory; 404 otherwise, like the other optional
// observability surfaces.
//
// Parameters:
//
//	sweep   boolean; true forces a fresh synchronous sweep instead of
//	        returning the background worker's last report. Sweeps are
//	        cheap (component walks take per-component locks one at a
//	        time) but not free — dashboards polling this endpoint
//	        should rely on the background cadence.
func (s *Server) handleMemory(w http.ResponseWriter, r *http.Request) {
	if s.eng.MemComponents() == nil {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "memory accounting disabled (engine built without a memsize registry)"})
		return
	}
	q := r.URL.Query()
	// Unknown parameters are rejected, same contract as
	// /v1/metrics/history: a typo must not silently change semantics.
	for key := range q {
		switch key {
		case "sweep":
		default:
			writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("unknown query parameter %q (want sweep)", key)})
			return
		}
	}
	fresh := false
	if v := q.Get("sweep"); v != "" {
		b, err := strconv.ParseBool(v)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: "sweep must be a boolean"})
			return
		}
		fresh = b
	}
	rep := s.eng.LastMemReport()
	if rep == nil || fresh {
		rep = s.eng.MemSweep()
	}
	writeJSON(w, http.StatusOK, rep)
}
