package server

import (
	"fmt"
	"math"
	"net/http"
	"strconv"
	"time"

	"xar/internal/telemetry"
)

// maxTraceListLimit caps GET /v1/traces?limit=...; the ring store holds
// far fewer traces than this, so anything larger is a client bug.
const maxTraceListLimit = 10000

// Trace browsing endpoints. These serve the tracer's ring-buffer store —
// the same store the engine's spans land in — so a slow histogram bucket
// exemplar or an X-Xar-Trace-Id response header resolves to a full span
// tree with one curl.
//
//	GET /v1/traces?op=search&min_ms=5&status=error&limit=20
//	GET /v1/traces/{id}

// TracesResponse is the GET /v1/traces reply.
type TracesResponse struct {
	Traces []telemetry.TraceDoc `json:"traces"`
}

func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	if s.tracer == nil {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "tracing disabled (server built without a tracer)"})
		return
	}
	q := r.URL.Query()
	// Unknown parameters are rejected rather than silently ignored: a
	// typo like "min_mss" otherwise returns an unfiltered listing that
	// looks like a successful filtered one.
	for key := range q {
		switch key {
		case "op", "min_ms", "status", "limit":
		default:
			writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("unknown query parameter %q (want op, min_ms, status, limit)", key)})
			return
		}
	}
	f := telemetry.TraceFilter{Op: q.Get("op")}
	if v := q.Get("min_ms"); v != "" {
		ms, err := strconv.ParseFloat(v, 64)
		// ParseFloat accepts "NaN" and "±Inf"; both would turn the filter
		// into nonsense (NaN comparisons are all false), so reject them
		// alongside negatives.
		if err != nil || math.IsNaN(ms) || math.IsInf(ms, 0) || ms < 0 {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: "min_ms must be a non-negative finite number"})
			return
		}
		f.MinDuration = time.Duration(ms * float64(time.Millisecond))
	}
	switch st := q.Get("status"); st {
	case "", "ok", "error":
		f.Status = st
	default:
		writeJSON(w, http.StatusBadRequest, errorBody{Error: `status must be "ok" or "error"`})
		return
	}
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 || n > maxTraceListLimit {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("limit must be an integer in [1, %d]", maxTraceListLimit)})
			return
		}
		f.Limit = n
	}
	writeJSON(w, http.StatusOK, TracesResponse{Traces: telemetry.Docs(s.tracer.Store().List(f))})
}

func (s *Server) handleTraceByID(w http.ResponseWriter, r *http.Request) {
	if s.tracer == nil {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "tracing disabled (server built without a tracer)"})
		return
	}
	id, ok := telemetry.ParseTraceID(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "trace id must be 32 hex digits"})
		return
	}
	td, ok := s.tracer.Store().Get(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "trace not found (evicted from the ring, or never sampled)"})
		return
	}
	writeJSON(w, http.StatusOK, td.Doc())
}
