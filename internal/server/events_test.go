package server

import (
	"archive/tar"
	"compress/gzip"
	"encoding/json"
	"io"
	"net/http"
	"testing"

	"xar/internal/journal"
)

// TestRideTimelineEndpoint drives a create + search over HTTP and reads
// the ride's journaled lifecycle back through the API.
func TestRideTimelineEndpoint(t *testing.T) {
	env := newTracedEnv(t)
	body := env.searchBody(t) // creates ride 1 via POST /v1/rides
	if resp := env.doRaw(t, "POST", "/v1/search", body, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("search: %d", resp.StatusCode)
	}

	var tl TimelineResponse
	if code := env.do(t, "GET", "/v1/rides/1/timeline", nil, &tl); code != http.StatusOK {
		t.Fatalf("timeline: %d", code)
	}
	if tl.RideID != 1 || len(tl.Events) == 0 {
		t.Fatalf("timeline = %+v", tl)
	}
	if tl.Events[0].Type != journal.Created {
		t.Fatalf("first event = %q, want created", tl.Events[0].Type)
	}
	if tl.Events[0].TraceID == "" {
		t.Fatal("created event lost its trace cross-link")
	}
	for i := 1; i < len(tl.Events); i++ {
		if tl.Events[i-1].Seq >= tl.Events[i].Seq {
			t.Fatalf("timeline not seq-ascending at %d", i)
		}
	}

	// limit keeps the most recent events.
	full := len(tl.Events)
	if code := env.do(t, "GET", "/v1/rides/1/timeline?limit=1", nil, &tl); code != http.StatusOK {
		t.Fatalf("limited timeline: %d", code)
	}
	if len(tl.Events) != 1 || tl.Events[0].Seq != uint64(full) {
		t.Fatalf("limit=1 kept %d events (seq %d), want newest", len(tl.Events), tl.Events[0].Seq)
	}

	// Unknown ride → 404 with a JSON error body.
	resp := env.doRaw(t, "GET", "/v1/rides/424242/timeline", "", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown ride timeline = %d, want 404", resp.StatusCode)
	}
	var eb errorBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil || eb.Error == "" {
		t.Fatalf("404 body not a JSON error (%v, %+v)", err, eb)
	}
}

// TestEventsEndpoint covers the global tail's filters and the since
// cursor contract.
func TestEventsEndpoint(t *testing.T) {
	env := newTracedEnv(t)
	body := env.searchBody(t)
	if resp := env.doRaw(t, "POST", "/v1/search", body, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("search: %d", resp.StatusCode)
	}

	var ev EventsResponse
	if code := env.do(t, "GET", "/v1/events", nil, &ev); code != http.StatusOK {
		t.Fatalf("events: %d", code)
	}
	if len(ev.Events) == 0 || ev.LastSeq == 0 {
		t.Fatalf("events = %+v", ev)
	}
	for i := 1; i < len(ev.Events); i++ {
		if ev.Events[i-1].Seq >= ev.Events[i].Seq {
			t.Fatalf("tail not seq-ascending at %d", i)
		}
	}

	var created EventsResponse
	if code := env.do(t, "GET", "/v1/events?type=created&limit=5", nil, &created); code != http.StatusOK {
		t.Fatalf("filtered events: %d", code)
	}
	if len(created.Events) == 0 {
		t.Fatal("no created events in tail")
	}
	for _, e := range created.Events {
		if e.Type != journal.Created {
			t.Fatalf("type filter leaked %q", e.Type)
		}
	}

	// The advertised cursor drains the stream.
	var after EventsResponse
	if code := env.do(t, "GET", "/v1/events?since="+itoa(ev.LastSeq), nil, &after); code != http.StatusOK {
		t.Fatalf("since query: %d", code)
	}
	if len(after.Events) != 0 {
		t.Fatalf("since=last_seq returned %d events, want 0", len(after.Events))
	}
}

func itoa(n uint64) string {
	b, _ := json.Marshal(n)
	return string(b)
}

// TestEventsEndpointValidation: query hardening — same contract as
// /v1/traces (unknown params rejected, JSON error bodies, limit caps).
func TestEventsEndpointValidation(t *testing.T) {
	env := newTracedEnv(t)
	for _, path := range []string{
		"/v1/events?type=teleported",
		"/v1/events?since=-1",
		"/v1/events?since=potato",
		"/v1/events?limit=0",
		"/v1/events?limit=-2",
		"/v1/events?limit=10001",
		"/v1/events?limit=potato",
		"/v1/events?typo=created",
		"/v1/events?type=created&bogus=1",
		"/v1/rides/1/timeline?limit=0",
		"/v1/rides/1/timeline?limit=10001",
		"/v1/rides/1/timeline?bogus=1",
	} {
		resp := env.doRaw(t, "GET", path, "", nil)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("GET %s = %d, want 400", path, resp.StatusCode)
			continue
		}
		var eb errorBody
		if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil || eb.Error == "" {
			t.Errorf("GET %s: body not a JSON error (%v, %+v)", path, err, eb)
		}
	}
	// Boundary values still pass.
	for _, path := range []string{
		"/v1/events?limit=10000",
		"/v1/events?since=0",
		"/v1/events?type=book_conflict_retried",
	} {
		if resp := env.doRaw(t, "GET", path, "", nil); resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s = %d, want 200", path, resp.StatusCode)
		}
	}
}

// TestEventsDisabled: a journal-less server 404s both endpoints with an
// explanatory error.
func TestEventsDisabled(t *testing.T) {
	env := newTestEnv(t)
	for _, path := range []string{"/v1/events", "/v1/rides/1/timeline"} {
		resp, err := http.Get(env.srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("GET %s without journal = %d, want 404", path, resp.StatusCode)
		}
	}
}

// TestHealthzAuditFold: the health endpoint reports the auditor block and
// escalates to "page" once any invariant violation is on record.
func TestHealthzAuditFold(t *testing.T) {
	env := newTracedEnv(t)
	env.auditor.Audit()

	var h HealthResponse
	if code := env.do(t, "GET", "/v1/healthz", nil, &h); code != http.StatusOK {
		t.Fatalf("healthz: %d", code)
	}
	if h.Status != "ok" || h.Audit == nil || h.Audit.TotalViolations != 0 {
		t.Fatalf("healthy healthz = %+v (audit %+v)", h, h.Audit)
	}

	// Seed a causality violation behind the engine's back and sweep.
	env.journal.Record(journal.Event{Type: journal.Booked, Ride: 999999})
	env.auditor.Audit()

	if code := env.do(t, "GET", "/v1/healthz", nil, &h); code != http.StatusOK {
		t.Fatalf("healthz: %d", code)
	}
	if h.Status != "page" {
		t.Fatalf("violated healthz status = %q, want page", h.Status)
	}
	if h.Audit == nil || h.Audit.TotalViolations == 0 || h.Audit.LastViolations == 0 {
		t.Fatalf("audit block = %+v", h.Audit)
	}
}

// TestDebugBundleAuditArtifacts: a bundle from a server with a violation
// on record carries audit.json and the violating rides' timelines.
func TestDebugBundleAuditArtifacts(t *testing.T) {
	env := newTracedEnv(t)
	body := env.searchBody(t) // ride 1 exists and is journaled
	_ = body
	env.journal.Record(journal.Event{Type: journal.Completed, Ride: 1})
	env.journal.Record(journal.Event{Type: journal.Completed, Ride: 1}) // double-terminal
	env.auditor.Audit()

	resp := env.doRaw(t, "GET", "/v1/debug/bundle", "", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("bundle: %d", resp.StatusCode)
	}
	gz, err := gzip.NewReader(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	members := map[string][]byte{}
	tr := tar.NewReader(gz)
	for {
		hdr, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		b, err := io.ReadAll(tr)
		if err != nil {
			t.Fatal(err)
		}
		members[hdr.Name] = b
	}

	var auditDump struct {
		TotalViolations uint64  `json:"total_violations"`
		Recent          []int64 `json:"recent_violating_rides"`
	}
	if err := json.Unmarshal(members["audit.json"], &auditDump); err != nil {
		t.Fatalf("audit.json: %v (%q)", err, members["audit.json"])
	}
	if auditDump.TotalViolations == 0 || len(auditDump.Recent) == 0 || auditDump.Recent[0] != 1 {
		t.Fatalf("audit.json = %+v", auditDump)
	}
	var timelines []TimelineResponse
	if err := json.Unmarshal(members["audit_timelines.json"], &timelines); err != nil {
		t.Fatalf("audit_timelines.json: %v", err)
	}
	if len(timelines) != 1 || timelines[0].RideID != 1 || len(timelines[0].Events) == 0 {
		t.Fatalf("audit_timelines.json = %+v", timelines)
	}
}
