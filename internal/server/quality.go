package server

import (
	"fmt"
	"net/http"

	"xar/internal/quality"
)

// WithQuality serves the match-quality collector's state at
// GET /v1/quality and includes quality.json in debug bundles. Pass the
// same collector the engine was configured with (core.Config.Quality)
// so the endpoint reflects live funnel and shadow-matcher accounting.
func WithQuality(qc *quality.Collector) Option {
	return func(s *Server) { s.quality = qc }
}

// QualityResponse is the GET /v1/quality body: the rejection funnel,
// the approximation-gap distributions, and the shadow counterfactual
// matcher's attribution and regret statistics, plus the engine-level
// match rate for context.
type QualityResponse struct {
	quality.Snapshot
	// MatchRate is the cumulative average of matches per search
	// (engine-wide, not only quality-tracked searches).
	MatchRate float64 `json:"match_rate"`
}

func (s *Server) handleQuality(w http.ResponseWriter, r *http.Request) {
	if s.quality == nil {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "match-quality accounting disabled (server built without a quality collector)"})
		return
	}
	// No parameters today; reject any so a future filtered form cannot
	// be shadowed by ignore-everything behavior (same contract as
	// /v1/slo and /v1/metrics/history).
	for key := range r.URL.Query() {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("unknown query parameter %q (endpoint takes none)", key)})
		return
	}
	writeJSON(w, http.StatusOK, s.qualityResponse())
}

func (s *Server) qualityResponse() QualityResponse {
	return QualityResponse{
		Snapshot:  s.quality.Snapshot(),
		MatchRate: s.eng.Metrics().MatchRate(),
	}
}
