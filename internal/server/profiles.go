// Continuous-profiling endpoints: the engine's profile rings served
// over HTTP.
//
//	GET /v1/profiles                      — list capture summaries (filter: pinned, since_s, limit)
//	GET /v1/profiles/{id}                 — one capture's flat tables (?kind= narrows, ?format=pprof exports raw)
//	GET /v1/profiles/diff?from=&to=&kind= — symbol-level delta between two captures
//
// The raw export is the exact gzipped protobuf the runtime produced,
// so `curl .../v1/profiles/12?format=pprof&kind=cpu | go tool pprof -`
// works. All three endpoints 400 on unknown query parameters, same
// contract as /v1/metrics/history.
package server

import (
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"xar/internal/profile"
)

// ProfileListResponse is the GET /v1/profiles body.
type ProfileListResponse struct {
	Profiles []profile.Summary `json:"profiles"`
}

func (s *Server) profilerOr404(w http.ResponseWriter) *profile.Profiler {
	p := s.eng.Profiler()
	if p == nil {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "continuous profiling disabled (engine built without Config.Profiling)"})
		return nil
	}
	return p
}

func (s *Server) handleProfiles(w http.ResponseWriter, r *http.Request) {
	p := s.profilerOr404(w)
	if p == nil {
		return
	}
	q := r.URL.Query()
	for key := range q {
		switch key {
		case "pinned", "since_s", "limit":
		default:
			writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("unknown query parameter %q (want pinned, since_s, limit)", key)})
			return
		}
	}
	var f profile.ListFilter
	if v := q.Get("pinned"); v != "" {
		b, err := strconv.ParseBool(v)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("bad pinned %q", v)})
			return
		}
		f.PinnedOnly = b
	}
	if v := q.Get("since_s"); v != "" {
		sec, err := strconv.ParseFloat(v, 64)
		if err != nil || sec < 0 {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("bad since_s %q", v)})
			return
		}
		f.Since = sec
	}
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("bad limit %q", v)})
			return
		}
		f.Limit = n
	}
	writeJSON(w, http.StatusOK, ProfileListResponse{Profiles: p.List(f)})
}

func (s *Server) handleProfileByID(w http.ResponseWriter, r *http.Request) {
	p := s.profilerOr404(w)
	if p == nil {
		return
	}
	q := r.URL.Query()
	for key := range q {
		switch key {
		case "kind", "format":
		default:
			writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("unknown query parameter %q (want kind, format)", key)})
			return
		}
	}
	id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "invalid profile id"})
		return
	}
	c, ok := p.Get(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: fmt.Sprintf("no capture %d in the rings (evicted or never taken)", id)})
		return
	}
	switch q.Get("format") {
	case "", "json":
		if kind := q.Get("kind"); kind != "" {
			f := c.Folded(kind)
			if f == nil {
				writeJSON(w, http.StatusNotFound, errorBody{Error: fmt.Sprintf("capture %d has no %q profile (has %s)", id, kind, strings.Join(kindsOf(&c), ", "))})
				return
			}
			writeJSON(w, http.StatusOK, f)
			return
		}
		writeJSON(w, http.StatusOK, &c)
	case "pprof":
		// The raw export: kind names a runtime profile blob ("heap"
		// backs both heap_inuse and heap_alloc); default cpu.
		name := q.Get("kind")
		if name == "" {
			name = "cpu"
		}
		switch name {
		case profile.KindHeapInuse, profile.KindHeapAlloc:
			name = "heap"
		}
		raw := c.Raw(name)
		if raw == nil {
			writeJSON(w, http.StatusNotFound, errorBody{Error: fmt.Sprintf("capture %d has no raw %q blob (has %s)", id, name, strings.Join(c.RawNames(), ", "))})
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("Content-Disposition", fmt.Sprintf("attachment; filename=%q", fmt.Sprintf("profile-%d-%s.pprof", id, name)))
		_, _ = w.Write(raw)
	default:
		writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("bad format %q (want json or pprof)", q.Get("format"))})
	}
}

func kindsOf(c *profile.Capture) []string {
	kinds := make([]string, 0, len(c.Profiles))
	for _, f := range c.Profiles {
		kinds = append(kinds, f.Kind)
	}
	return kinds
}

func (s *Server) handleProfileDiff(w http.ResponseWriter, r *http.Request) {
	p := s.profilerOr404(w)
	if p == nil {
		return
	}
	q := r.URL.Query()
	for key := range q {
		switch key {
		case "from", "to", "kind", "limit":
		default:
			writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("unknown query parameter %q (want from, to, kind, limit)", key)})
			return
		}
	}
	from, err1 := strconv.ParseUint(q.Get("from"), 10, 64)
	to, err2 := strconv.ParseUint(q.Get("to"), 10, 64)
	if err1 != nil || err2 != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "from and to must be capture ids (see GET /v1/profiles)"})
		return
	}
	kind := q.Get("kind")
	if kind == "" {
		kind = profile.KindCPU
	}
	limit := 30
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("bad limit %q", v)})
			return
		}
		limit = n
	}
	d, err := p.DiffCaptures(from, to, kind, limit)
	if err != nil {
		writeJSON(w, http.StatusNotFound, errorBody{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, d)
}
