package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"xar/internal/core"
	"xar/internal/discretize"
	"xar/internal/roadnet"
)

type testEnv struct {
	srv  *httptest.Server
	eng  *core.Engine
	city *roadnet.City
}

func newTestEnv(t testing.TB) *testEnv {
	t.Helper()
	city, err := roadnet.GenerateCity(roadnet.DefaultCityConfig(24, 14, 42))
	if err != nil {
		t.Fatal(err)
	}
	d, err := discretize.Build(city, discretize.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.NewEngine(d, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	social := core.NewSocialGraph()
	social.AddFriendship(1, 30)
	s := httptest.NewServer(New(eng, social).Handler())
	t.Cleanup(s.Close)
	return &testEnv{srv: s, eng: eng, city: city}
}

func (env *testEnv) do(t testing.TB, method, path string, body, out interface{}) int {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req, err := http.NewRequest(method, env.srv.URL+path, &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode < 300 {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s %s: decode: %v", method, path, err)
		}
	}
	return resp.StatusCode
}

func (env *testEnv) corners() (PointJSON, PointJSON) {
	g := env.city.Graph
	a := g.Point(0)
	b := g.Point(roadnet.NodeID(g.NumNodes() - 1))
	return toJSON(a), toJSON(b)
}

func TestHealthz(t *testing.T) {
	env := newTestEnv(t)
	var h HealthResponse
	if code := env.do(t, "GET", "/v1/healthz", nil, &h); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if h.Status != "ok" || h.Clusters == 0 || h.Landmarks == 0 {
		t.Fatalf("health: %+v", h)
	}
}

func TestRideLifecycleOverHTTP(t *testing.T) {
	env := newTestEnv(t)
	src, dst := env.corners()

	// Create.
	var created CreateRideResponse
	code := env.do(t, "POST", "/v1/rides", CreateRideRequest{
		Source: src, Dest: dst, Departure: 1000, DetourLimit: 2000,
	}, &created)
	if code != http.StatusCreated || created.RideID == 0 {
		t.Fatalf("create: %d %+v", code, created)
	}

	// Status.
	var status RideStatus
	code = env.do(t, "GET", fmt.Sprintf("/v1/rides/%d", created.RideID), nil, &status)
	if code != http.StatusOK {
		t.Fatalf("get: %d", code)
	}
	if status.SeatsAvail != 3 || status.RouteNodes < 2 {
		t.Fatalf("status: %+v", status)
	}

	// Search along the corridor (use a mid-route point via the engine).
	r := env.eng.Ride(1)
	g := env.city.Graph
	mid1 := toJSON(g.Point(r.Route[len(r.Route)/4]))
	mid2 := toJSON(g.Point(r.Route[3*len(r.Route)/4]))
	var found SearchResponse
	code = env.do(t, "POST", "/v1/search", SearchRequest{
		Source: mid1, Dest: mid2,
		Earliest: 0, Latest: 5000, WalkLimit: 900,
	}, &found)
	if code != http.StatusOK {
		t.Fatalf("search: %d", code)
	}
	if len(found.Matches) == 0 {
		t.Skip("no corridor match; layout-dependent")
	}
	m := found.Matches[0]
	if m.RideID != created.RideID {
		t.Fatalf("matched ride %d", m.RideID)
	}

	// Book.
	var bk BookingJSON
	code = env.do(t, "POST", "/v1/bookings", BookRequest{
		Match: m,
		Request: SearchRequest{
			Source: mid1, Dest: mid2,
			Earliest: 0, Latest: 5000, WalkLimit: 900,
		},
	}, &bk)
	if code != http.StatusCreated {
		t.Fatalf("book: %d", code)
	}
	if bk.ShortestPaths > 4 {
		t.Fatalf("booking ran %d shortest paths", bk.ShortestPaths)
	}

	// Track by time.
	var tr TrackResponse
	now := 1e12
	code = env.do(t, "POST", "/v1/track", TrackRequest{RideID: created.RideID, Now: &now}, &tr)
	if code != http.StatusOK || !tr.Arrived {
		t.Fatalf("track: %d arrived=%v", code, tr.Arrived)
	}

	// Metrics reflect the session.
	var metrics core.Metrics
	if code := env.do(t, "GET", "/v1/metrics", nil, &metrics); code != http.StatusOK {
		t.Fatalf("metrics: %d", code)
	}
	if metrics.RidesCreated != 1 || metrics.Bookings != 1 || metrics.Searches != 1 {
		t.Fatalf("metrics: %+v", metrics)
	}

	// Delete.
	if code := env.do(t, "DELETE", fmt.Sprintf("/v1/rides/%d", created.RideID), nil, nil); code != http.StatusNoContent {
		t.Fatalf("delete: %d", code)
	}
	if code := env.do(t, "GET", fmt.Sprintf("/v1/rides/%d", created.RideID), nil, nil); code != http.StatusNotFound {
		t.Fatalf("get after delete: %d", code)
	}
}

func TestCancelBookingOverHTTP(t *testing.T) {
	env := newTestEnv(t)
	src, dst := env.corners()
	var created CreateRideResponse
	env.do(t, "POST", "/v1/rides", CreateRideRequest{Source: src, Dest: dst, Departure: 1000, DetourLimit: 2500}, &created)
	r := env.eng.Ride(1)
	g := env.city.Graph
	sr := SearchRequest{
		Source: toJSON(g.Point(r.Route[len(r.Route)/3])), Dest: toJSON(g.Point(r.Route[2*len(r.Route)/3])),
		Earliest: 0, Latest: 5000, WalkLimit: 900,
	}
	var found SearchResponse
	env.do(t, "POST", "/v1/search", sr, &found)
	if len(found.Matches) == 0 {
		t.Skip("no match; layout-dependent")
	}
	var bk BookingJSON
	if code := env.do(t, "POST", "/v1/bookings", BookRequest{Match: found.Matches[0], Request: sr}, &bk); code != http.StatusCreated {
		t.Fatalf("book: %d", code)
	}
	code := env.do(t, "DELETE", "/v1/bookings", CancelRequest{
		RideID: bk.RideID, PickupNode: bk.PickupNode, DropoffNode: bk.DropoffNode,
	}, nil)
	if code != http.StatusNoContent {
		t.Fatalf("cancel: %d", code)
	}
	// Second cancel must 4xx.
	code = env.do(t, "DELETE", "/v1/bookings", CancelRequest{
		RideID: bk.RideID, PickupNode: bk.PickupNode, DropoffNode: bk.DropoffNode,
	}, nil)
	if code < 400 {
		t.Fatalf("double cancel: %d", code)
	}
}

func TestErrorMapping(t *testing.T) {
	env := newTestEnv(t)
	src, _ := env.corners()

	// Unknown ride → 404.
	now := 5.0
	if code := env.do(t, "POST", "/v1/track", TrackRequest{RideID: 999, Now: &now}, nil); code != http.StatusNotFound {
		t.Fatalf("track unknown: %d", code)
	}
	// Unservable search → 422.
	if code := env.do(t, "POST", "/v1/search", SearchRequest{
		Source: PointJSON{Lat: 10, Lng: 10}, Dest: PointJSON{Lat: 10.1, Lng: 10},
		Latest: 100, WalkLimit: 500,
	}, nil); code != http.StatusUnprocessableEntity {
		t.Fatalf("unservable search: %d", code)
	}
	// Malformed body → 400.
	req, _ := http.NewRequest("POST", env.srv.URL+"/v1/rides", bytes.NewReader([]byte("{nope")))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body: %d", resp.StatusCode)
	}
	// Unknown fields rejected → 400.
	if code := env.do(t, "POST", "/v1/rides", map[string]interface{}{
		"source": src, "dest": src, "departure": 1, "bogus": true,
	}, nil); code != http.StatusBadRequest {
		t.Fatalf("unknown field: %d", code)
	}
	// Track without now/gps → 400.
	if code := env.do(t, "POST", "/v1/track", TrackRequest{RideID: 1}, nil); code != http.StatusBadRequest {
		t.Fatalf("empty track: %d", code)
	}
	// Invalid path id → 400.
	if code := env.do(t, "GET", "/v1/rides/abc", nil, nil); code != http.StatusBadRequest {
		t.Fatalf("bad id: %d", code)
	}
	// Coincident offer endpoints → 400.
	if code := env.do(t, "POST", "/v1/rides", CreateRideRequest{Source: src, Dest: src, Departure: 1}, nil); code != http.StatusBadRequest {
		t.Fatalf("coincident offer: %d", code)
	}
}

func TestTrackByGPS(t *testing.T) {
	env := newTestEnv(t)
	src, dst := env.corners()
	var created CreateRideResponse
	env.do(t, "POST", "/v1/rides", CreateRideRequest{Source: src, Dest: dst, Departure: 0}, &created)
	r := env.eng.Ride(1)
	g := env.city.Graph
	gps := toJSON(g.Point(r.Route[len(r.Route)/2]))
	var tr TrackResponse
	if code := env.do(t, "POST", "/v1/track", TrackRequest{RideID: created.RideID, GPS: &gps}, &tr); code != http.StatusOK {
		t.Fatalf("gps track: %d", code)
	}
	if tr.Arrived {
		t.Fatal("mid-route GPS arrived")
	}
	// eng.Ride returns a snapshot; re-fetch to observe the advance.
	if env.eng.Ride(1).Progress == 0 {
		t.Fatal("GPS report did not advance the ride")
	}
}

func TestSocialRankingOverHTTP(t *testing.T) {
	env := newTestEnv(t)
	src, dst := env.corners()
	// Two rides: owner 30 (friend of requester 1) and owner 99.
	for _, owner := range []int64{99, 30} {
		var created CreateRideResponse
		env.do(t, "POST", "/v1/rides", CreateRideRequest{
			Source: src, Dest: dst, Departure: 1000, DetourLimit: 2000, Owner: owner,
		}, &created)
	}
	r := env.eng.Ride(1)
	g := env.city.Graph
	sr := SearchRequest{
		Source: toJSON(g.Point(r.Route[len(r.Route)/4])), Dest: toJSON(g.Point(r.Route[3*len(r.Route)/4])),
		Earliest: 0, Latest: 5000, WalkLimit: 900, Requester: 1,
	}
	var found SearchResponse
	env.do(t, "POST", "/v1/search", sr, &found)
	if len(found.Matches) < 2 {
		t.Skip("need both rides matched; layout-dependent")
	}
	// Ride 2 (owner 30, the friend) must rank first for requester 1.
	if found.Matches[0].RideID != 2 {
		t.Fatalf("friend's ride not ranked first: %+v", found.Matches)
	}
}

func TestConcurrentHTTPTraffic(t *testing.T) {
	env := newTestEnv(t)
	src, dst := env.corners()
	var created CreateRideResponse
	env.do(t, "POST", "/v1/rides", CreateRideRequest{Source: src, Dest: dst, Departure: 1000, DetourLimit: 2000}, &created)
	r := env.eng.Ride(1)
	g := env.city.Graph
	sr := SearchRequest{
		Source: toJSON(g.Point(r.Route[len(r.Route)/4])), Dest: toJSON(g.Point(r.Route[3*len(r.Route)/4])),
		Earliest: 0, Latest: 5000, WalkLimit: 900,
	}
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if w%2 == 0 {
					var out SearchResponse
					if code := env.do(t, "POST", "/v1/search", sr, &out); code != http.StatusOK {
						errs <- fmt.Errorf("search status %d", code)
						return
					}
				} else {
					var out CreateRideResponse
					body := CreateRideRequest{Source: src, Dest: dst, Departure: float64(1000 + w*100 + i)}
					if code := env.do(t, "POST", "/v1/rides", body, &out); code != http.StatusCreated {
						errs <- fmt.Errorf("create status %d", code)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := env.eng.Index().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRideRouteGeoJSON(t *testing.T) {
	env := newTestEnv(t)
	src, dst := env.corners()
	var created CreateRideResponse
	env.do(t, "POST", "/v1/rides", CreateRideRequest{Source: src, Dest: dst, Departure: 0}, &created)

	resp, err := http.Get(env.srv.URL + fmt.Sprintf("/v1/rides/%d/route", created.RideID))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/geo+json" {
		t.Fatalf("content type %q", ct)
	}
	var doc struct {
		Type     string `json:"type"`
		Features []struct {
			Type     string `json:"type"`
			Geometry struct {
				Type        string          `json:"type"`
				Coordinates json.RawMessage `json:"coordinates"`
			} `json:"geometry"`
		} `json:"features"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc.Type != "FeatureCollection" {
		t.Fatalf("type %q", doc.Type)
	}
	// One LineString plus >= 2 via Points.
	if len(doc.Features) < 3 {
		t.Fatalf("%d features", len(doc.Features))
	}
	if doc.Features[0].Geometry.Type != "LineString" {
		t.Fatalf("first feature is %q", doc.Features[0].Geometry.Type)
	}
	var line [][2]float64
	if err := json.Unmarshal(doc.Features[0].Geometry.Coordinates, &line); err != nil {
		t.Fatal(err)
	}
	if len(line) < 2 {
		t.Fatal("route line too short")
	}
	// GeoJSON order is lng,lat: for our NYC-like city lng ≈ -74, lat ≈ 40.7.
	if line[0][0] > 0 || line[0][1] < 0 {
		t.Fatalf("coordinates not in lng,lat order: %v", line[0])
	}
	// Unknown ride → 404.
	resp2, err := http.Get(env.srv.URL + "/v1/rides/999/route")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown ride route: %d", resp2.StatusCode)
	}
}

func TestSearchBatchOverHTTP(t *testing.T) {
	env := newTestEnv(t)
	src, dst := env.corners()
	var created CreateRideResponse
	env.do(t, "POST", "/v1/rides", CreateRideRequest{Source: src, Dest: dst, Departure: 1000, DetourLimit: 2000}, &created)
	r := env.eng.Ride(1)
	g := env.city.Graph

	mk := func(fromFrac, toFrac float64) SearchRequest {
		return SearchRequest{
			Source:   toJSON(g.Point(r.Route[int(fromFrac*float64(len(r.Route)-1))])),
			Dest:     toJSON(g.Point(r.Route[int(toFrac*float64(len(r.Route)-1))])),
			Earliest: 0, Latest: 5000, WalkLimit: 900,
		}
	}
	batch := BatchSearchRequest{
		Requests: []SearchRequest{
			mk(0.2, 0.8),
			mk(0.3, 0.7),
			{Source: PointJSON{Lat: 10, Lng: 10}, Dest: PointJSON{Lat: 10.1, Lng: 10}, Latest: 100, WalkLimit: 100},
		},
		K: 5,
	}
	var resp BatchSearchResponse
	if code := env.do(t, "POST", "/v1/search/batch", batch, &resp); code != http.StatusOK {
		t.Fatalf("batch status %d", code)
	}
	if len(resp.Results) != 3 {
		t.Fatalf("results = %d", len(resp.Results))
	}
	// Batch results must equal individual searches.
	for i := 0; i < 2; i++ {
		var single SearchResponse
		body := batch.Requests[i]
		body.K = 5
		env.do(t, "POST", "/v1/search", body, &single)
		if len(single.Matches) != len(resp.Results[i].Matches) {
			t.Fatalf("request %d: batch %d vs single %d matches",
				i, len(resp.Results[i].Matches), len(single.Matches))
		}
	}
	// The unservable entry carries an error but doesn't fail the batch.
	if resp.Results[2].Error == "" {
		t.Fatal("unservable batch entry must report an error")
	}
	// Empty and oversized batches are rejected.
	if code := env.do(t, "POST", "/v1/search/batch", BatchSearchRequest{}, nil); code != http.StatusBadRequest {
		t.Fatalf("empty batch: %d", code)
	}
	big := BatchSearchRequest{Requests: make([]SearchRequest, maxBatchSize+1)}
	if code := env.do(t, "POST", "/v1/search/batch", big, nil); code != http.StatusBadRequest {
		t.Fatalf("oversized batch: %d", code)
	}
}
