// Package server exposes the XAR engine as a JSON-over-HTTP service —
// the integration surface a multi-modal trip planner calls (§IX). The
// paper's Go-LA deployment numbers (8 trip plans per request, ~4 legs
// each, look-to-book ≈ 480) describe exactly this interface under load;
// the search endpoint is therefore the hot path and maps directly onto
// the engine's shortest-path-free search.
//
// Endpoints (all JSON):
//
//	POST   /v1/rides            create a ride offer
//	GET    /v1/rides/{id}       ride status
//	DELETE /v1/rides/{id}       complete/cancel a ride
//	POST   /v1/search           find matches for a request
//	POST   /v1/bookings         confirm a match
//	DELETE /v1/bookings         cancel a booking
//	POST   /v1/track            advance a ride (by time or GPS report)
//	GET    /v1/rides/{id}/timeline  the ride's journaled event timeline
//	GET    /v1/events           global event tail (filter: type, since, limit)
//	GET    /v1/metrics          engine counters
//	GET    /v1/metrics/prom     full telemetry, Prometheus text format
//	GET    /v1/metrics/json     full telemetry, JSON with percentiles
//	GET    /v1/traces           recent traces (filter: op, min_ms, status)
//	GET    /v1/traces/{id}      one trace as a span tree
//	GET    /v1/quality          match-quality funnel, slack, shadow stats
//	GET    /v1/memory           per-component memory breakdown, rides/GB,
//	                            heap stats, top allocation sites
//	GET    /v1/profiles         continuous-profiler capture list (filter:
//	                            pinned, since_s, limit)
//	GET    /v1/profiles/{id}    one capture's flat profile tables (?kind=
//	                            narrows, ?format=pprof exports the raw blob)
//	GET    /v1/profiles/diff    symbol-level delta between two captures
//	                            (from, to, kind, limit)
//	GET    /v1/healthz          liveness + uptime + engine counters
//
// Every route is wrapped in telemetry middleware: per-route request and
// status-class counters, latency histograms, an in-flight gauge,
// request-scoped tracing (W3C traceparent in, X-Xar-Trace-Id out) and an
// optional structured access log (see middleware.go).
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"time"

	"xar/internal/audit"
	"xar/internal/core"
	"xar/internal/geo"
	"xar/internal/index"
	"xar/internal/journal"
	"xar/internal/profile"
	"xar/internal/quality"
	"xar/internal/roadnet"
	"xar/internal/telemetry"
)

// Server wires an engine (and optionally a social graph) to an
// http.Handler. Safe for concurrent use — the engine does the locking.
type Server struct {
	eng    *core.Engine
	social *core.SocialGraph
	mux    *http.ServeMux

	reg         *telemetry.Registry
	tracer      *telemetry.Tracer
	recorder    *telemetry.Recorder
	slo         *telemetry.SLOEngine
	cpuProfiler *profile.CPUProfiler
	journal     *journal.Journal
	auditor     *audit.Auditor
	quality     *quality.Collector
	accessLog   *slog.Logger
	inflight    *telemetry.Gauge
	build       telemetry.Build
	started     time.Time
}

// Option customizes a Server.
type Option func(*Server)

// WithTelemetry records serving metrics into reg instead of a private
// registry. Pass the same registry the engine was configured with so
// /v1/metrics/prom exposes engine, search-stage and HTTP series
// together.
func WithTelemetry(reg *telemetry.Registry) Option {
	return func(s *Server) { s.reg = reg }
}

// WithAccessLog emits one structured record per request to l.
func WithAccessLog(l *slog.Logger) Option {
	return func(s *Server) { s.accessLog = l }
}

// WithTracer enables request-scoped tracing: each head-sampled request
// (or any request arriving with a sampled W3C traceparent) becomes a
// trace rooted at its route, with the engine's per-shard search fan-out,
// book attempts and shortest-path calls as child spans, browsable via
// GET /v1/traces. Pass the same tracer the engine was configured with so
// bare engine traces (sim, bench) and HTTP traces share one store.
func WithTracer(tr *telemetry.Tracer) Option {
	return func(s *Server) { s.tracer = tr }
}

// New builds a server. social may be nil (no social ranking).
func New(eng *core.Engine, social *core.SocialGraph, opts ...Option) *Server {
	s := &Server{eng: eng, social: social, mux: http.NewServeMux(), started: time.Now()}
	for _, o := range opts {
		o(s)
	}
	if s.reg == nil {
		// /v1/metrics/prom must always work; without an injected registry
		// it serves the HTTP-layer series only.
		s.reg = telemetry.NewRegistry()
	}
	s.inflight = s.reg.Gauge(httpInflightName, "Requests currently being served.", nil)
	// Every exposition carries the build identity (info-gauge idiom);
	// healthz reports the same resolved values.
	s.build = telemetry.RegisterBuildInfo(s.reg)
	if mr := eng.MemComponents(); mr != nil {
		// The server owns two more memory-holding components; register
		// them after the engine's (attribution order favors earlier
		// components, and nothing here shares structure with them), then
		// sweep once so /v1/memory and the xar_memsize gauges are live
		// before the background worker's first tick.
		if s.tracer != nil {
			mr.Register("traces", s.tracer.Store())
		}
		if s.recorder != nil {
			mr.Register("recorder", s.recorder)
		}
		eng.MemSweep()
	}

	handle := func(pattern, route string, h http.HandlerFunc) {
		s.mux.Handle(pattern, s.instrument(route, h))
	}
	handle("POST /v1/rides", "/v1/rides", s.handleCreateRide)
	handle("GET /v1/rides/{id}", "/v1/rides/{id}", s.handleGetRide)
	handle("GET /v1/rides/{id}/route", "/v1/rides/{id}/route", s.handleRideRoute)
	handle("GET /v1/rides/{id}/timeline", "/v1/rides/{id}/timeline", s.handleRideTimeline)
	handle("GET /v1/events", "/v1/events", s.handleEvents)
	handle("DELETE /v1/rides/{id}", "/v1/rides/{id}", s.handleDeleteRide)
	handle("POST /v1/search", "/v1/search", s.handleSearch)
	handle("POST /v1/search/batch", "/v1/search/batch", s.handleSearchBatch)
	handle("POST /v1/bookings", "/v1/bookings", s.handleBook)
	handle("DELETE /v1/bookings", "/v1/bookings", s.handleCancel)
	handle("POST /v1/track", "/v1/track", s.handleTrack)
	handle("GET /v1/metrics", "/v1/metrics", s.handleMetrics)
	handle("GET /v1/metrics/prom", "/v1/metrics/prom", s.handleMetricsProm)
	handle("GET /v1/metrics/json", "/v1/metrics/json", s.handleMetricsJSON)
	handle("GET /v1/traces", "/v1/traces", s.handleTraces)
	handle("GET /v1/traces/{id}", "/v1/traces/{id}", s.handleTraceByID)
	handle("GET /v1/metrics/history", "/v1/metrics/history", s.handleMetricsHistory)
	handle("GET /v1/slo", "/v1/slo", s.handleSLO)
	handle("GET /v1/quality", "/v1/quality", s.handleQuality)
	handle("GET /v1/memory", "/v1/memory", s.handleMemory)
	handle("GET /v1/profiles", "/v1/profiles", s.handleProfiles)
	handle("GET /v1/profiles/diff", "/v1/profiles/diff", s.handleProfileDiff)
	handle("GET /v1/profiles/{id}", "/v1/profiles/{id}", s.handleProfileByID)
	handle("GET /v1/debug/bundle", "/v1/debug/bundle", s.handleDebugBundle)
	handle("GET /v1/healthz", "/v1/healthz", s.handleHealth)
	return s
}

// Registry returns the server's telemetry registry (the injected one,
// or the private default).
func (s *Server) Registry() *telemetry.Registry { return s.reg }

// Handler returns the routable handler.
func (s *Server) Handler() http.Handler { return s.mux }

// --- wire types ---

// PointJSON is a latitude/longitude pair.
type PointJSON struct {
	Lat float64 `json:"lat"`
	Lng float64 `json:"lng"`
}

func (p PointJSON) point() geo.Point { return geo.Point{Lat: p.Lat, Lng: p.Lng} }
func toJSON(p geo.Point) PointJSON   { return PointJSON{Lat: p.Lat, Lng: p.Lng} }

// CreateRideRequest is the POST /v1/rides body.
type CreateRideRequest struct {
	Source      PointJSON `json:"source"`
	Dest        PointJSON `json:"dest"`
	Departure   float64   `json:"departure"`
	Seats       int       `json:"seats,omitempty"`
	DetourLimit float64   `json:"detour_limit,omitempty"`
	Owner       int64     `json:"owner,omitempty"`
}

// CreateRideResponse returns the new ride's ID.
type CreateRideResponse struct {
	RideID int64 `json:"ride_id"`
}

// RideStatus is the GET /v1/rides/{id} body.
type RideStatus struct {
	RideID      int64     `json:"ride_id"`
	Source      PointJSON `json:"source"`
	Dest        PointJSON `json:"dest"`
	Departure   float64   `json:"departure"`
	SeatsAvail  int       `json:"seats_available"`
	SeatsTotal  int       `json:"seats_total"`
	DetourLeft  float64   `json:"detour_budget_m"`
	RouteNodes  int       `json:"route_nodes"`
	ViaPoints   int       `json:"via_points"`
	ProgressPct float64   `json:"progress_pct"`
}

// SearchRequest is the POST /v1/search body.
type SearchRequest struct {
	Source    PointJSON `json:"source"`
	Dest      PointJSON `json:"dest"`
	Earliest  float64   `json:"earliest_departure"`
	Latest    float64   `json:"latest_departure"`
	WalkLimit float64   `json:"walk_limit_m"`
	K         int       `json:"k,omitempty"`
	Requester int64     `json:"requester,omitempty"` // social ranking
}

func (sr SearchRequest) request() core.Request {
	return core.Request{
		Source:            sr.Source.point(),
		Dest:              sr.Dest.point(),
		EarliestDeparture: sr.Earliest,
		LatestDeparture:   sr.Latest,
		WalkLimit:         sr.WalkLimit,
	}
}

// MatchJSON is one search result; its fields are sufficient to book.
type MatchJSON struct {
	RideID         int64   `json:"ride_id"`
	PickupCluster  int     `json:"pickup_cluster"`
	DropoffCluster int     `json:"dropoff_cluster"`
	WalkSourceM    float64 `json:"walk_source_m"`
	WalkDestM      float64 `json:"walk_dest_m"`
	DetourEstM     float64 `json:"detour_estimate_m"`
	PickupETA      float64 `json:"pickup_eta"`
	DropoffETA     float64 `json:"dropoff_eta"`
}

// SearchResponse is the POST /v1/search reply.
type SearchResponse struct {
	Matches []MatchJSON `json:"matches"`
}

// BookRequest is the POST /v1/bookings body: the chosen match plus the
// original request (re-validated server-side).
type BookRequest struct {
	Match   MatchJSON     `json:"match"`
	Request SearchRequest `json:"request"`
}

// BookingJSON is the confirmed booking.
type BookingJSON struct {
	RideID        int64   `json:"ride_id"`
	PickupNode    int64   `json:"pickup_node"`
	DropoffNode   int64   `json:"dropoff_node"`
	PickupETA     float64 `json:"pickup_eta"`
	DropoffETA    float64 `json:"dropoff_eta"`
	WalkSourceM   float64 `json:"walk_source_m"`
	WalkDestM     float64 `json:"walk_dest_m"`
	DetourM       float64 `json:"detour_m"`
	ApproxErrorM  float64 `json:"approx_error_m"`
	ShortestPaths int     `json:"shortest_paths_run"`
}

// CancelRequest is the DELETE /v1/bookings body.
type CancelRequest struct {
	RideID      int64 `json:"ride_id"`
	PickupNode  int64 `json:"pickup_node"`
	DropoffNode int64 `json:"dropoff_node"`
}

// TrackRequest advances a ride by wall clock or GPS report.
type TrackRequest struct {
	RideID int64      `json:"ride_id"`
	Now    *float64   `json:"now,omitempty"`
	GPS    *PointJSON `json:"gps,omitempty"`
}

// TrackResponse reports arrival.
type TrackResponse struct {
	Arrived bool `json:"arrived"`
}

// errorBody is the uniform error envelope.
type errorBody struct {
	Error string `json:"error"`
}

// --- handlers ---

func (s *Server) handleCreateRide(w http.ResponseWriter, r *http.Request) {
	var req CreateRideRequest
	if !decode(w, r, &req) {
		return
	}
	id, err := s.eng.CreateRideCtx(r.Context(), core.RideOffer{
		Source:      req.Source.point(),
		Dest:        req.Dest.point(),
		Departure:   req.Departure,
		Seats:       req.Seats,
		DetourLimit: req.DetourLimit,
		Owner:       core.UserID(req.Owner),
	})
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, CreateRideResponse{RideID: int64(id)})
}

func (s *Server) handleGetRide(w http.ResponseWriter, r *http.Request) {
	id, ok := pathID(w, r)
	if !ok {
		return
	}
	ride := s.eng.Ride(index.RideID(id))
	if ride == nil {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown ride"})
		return
	}
	pct := 0.0
	if len(ride.Route) > 1 {
		pct = 100 * float64(ride.Progress) / float64(len(ride.Route)-1)
	}
	writeJSON(w, http.StatusOK, RideStatus{
		RideID:      int64(ride.ID),
		Source:      toJSON(ride.Source),
		Dest:        toJSON(ride.Dest),
		Departure:   ride.Departure,
		SeatsAvail:  ride.SeatsAvail,
		SeatsTotal:  ride.SeatsTotal,
		DetourLeft:  ride.DetourLimit,
		RouteNodes:  len(ride.Route),
		ViaPoints:   len(ride.Via),
		ProgressPct: pct,
	})
}

func (s *Server) handleRideRoute(w http.ResponseWriter, r *http.Request) {
	id, ok := pathID(w, r)
	if !ok {
		return
	}
	doc, err := s.eng.RouteGeoJSON(index.RideID(id))
	if err != nil {
		writeErr(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/geo+json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(doc)
}

func (s *Server) handleDeleteRide(w http.ResponseWriter, r *http.Request) {
	id, ok := pathID(w, r)
	if !ok {
		return
	}
	if !s.eng.CompleteRide(index.RideID(id)) {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown ride"})
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	var req SearchRequest
	if !decode(w, r, &req) {
		return
	}
	matches, err := s.eng.SearchKCtx(r.Context(), req.request(), req.K)
	if err != nil {
		writeErr(w, err)
		return
	}
	if req.Requester != 0 && s.social != nil {
		matches = s.eng.RankSocially(matches, core.UserID(req.Requester), s.social)
	}
	resp := SearchResponse{Matches: make([]MatchJSON, len(matches))}
	for i, m := range matches {
		resp.Matches[i] = MatchJSON{
			RideID:         int64(m.Ride),
			PickupCluster:  m.PickupCluster,
			DropoffCluster: m.DropoffCluster,
			WalkSourceM:    m.WalkSource,
			WalkDestM:      m.WalkDest,
			DetourEstM:     m.DetourEstimate,
			PickupETA:      m.PickupETA,
			DropoffETA:     m.DropoffETA,
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// BatchSearchRequest is the POST /v1/search/batch body — the shape of an
// MMTP issuing its C(k+1,2) segment searches for one trip plan (§IX-B).
type BatchSearchRequest struct {
	Requests []SearchRequest `json:"requests"`
	K        int             `json:"k,omitempty"`
}

// BatchSearchResponse aligns with the request slice; failed entries have
// Error set and no matches.
type BatchSearchResponse struct {
	Results []BatchSearchResult `json:"results"`
}

// BatchSearchResult is one entry of a batch reply.
type BatchSearchResult struct {
	Matches []MatchJSON `json:"matches"`
	Error   string      `json:"error,omitempty"`
}

const maxBatchSize = 256

func (s *Server) handleSearchBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchSearchRequest
	if !decode(w, r, &req) {
		return
	}
	if len(req.Requests) == 0 {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "empty batch"})
		return
	}
	if len(req.Requests) > maxBatchSize {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("batch exceeds %d requests", maxBatchSize)})
		return
	}
	reqs := make([]core.Request, len(req.Requests))
	for i, sr := range req.Requests {
		reqs[i] = sr.request()
	}
	results, errs := s.eng.SearchBatchCtx(r.Context(), reqs, req.K, 0)
	resp := BatchSearchResponse{Results: make([]BatchSearchResult, len(reqs))}
	for i := range reqs {
		if errs[i] != nil {
			resp.Results[i].Error = errs[i].Error()
			continue
		}
		ms := make([]MatchJSON, len(results[i]))
		for j, m := range results[i] {
			ms[j] = MatchJSON{
				RideID:         int64(m.Ride),
				PickupCluster:  m.PickupCluster,
				DropoffCluster: m.DropoffCluster,
				WalkSourceM:    m.WalkSource,
				WalkDestM:      m.WalkDest,
				DetourEstM:     m.DetourEstimate,
				PickupETA:      m.PickupETA,
				DropoffETA:     m.DropoffETA,
			}
		}
		resp.Results[i].Matches = ms
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleBook(w http.ResponseWriter, r *http.Request) {
	var req BookRequest
	if !decode(w, r, &req) {
		return
	}
	// The engine re-derives the support pair from the clusters, so a
	// Match rebuilt from wire fields is sufficient and tamper-safe.
	m := core.Match{
		Ride:           index.RideID(req.Match.RideID),
		PickupCluster:  req.Match.PickupCluster,
		DropoffCluster: req.Match.DropoffCluster,
	}
	bk, err := s.eng.BookCtx(r.Context(), m, req.Request.request())
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, BookingJSON{
		RideID:        int64(bk.Ride),
		PickupNode:    int64(bk.PickupNode),
		DropoffNode:   int64(bk.DropoffNode),
		PickupETA:     bk.PickupETA,
		DropoffETA:    bk.DropoffETA,
		WalkSourceM:   bk.WalkSource,
		WalkDestM:     bk.WalkDest,
		DetourM:       bk.DetourActual,
		ApproxErrorM:  bk.ApproxError(),
		ShortestPaths: bk.ShortestPathRuns,
	})
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	var req CancelRequest
	if !decode(w, r, &req) {
		return
	}
	err := s.eng.CancelBookingCtx(r.Context(), index.RideID(req.RideID),
		roadnet.NodeID(req.PickupNode), roadnet.NodeID(req.DropoffNode))
	if err != nil {
		writeErr(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleTrack(w http.ResponseWriter, r *http.Request) {
	var req TrackRequest
	if !decode(w, r, &req) {
		return
	}
	var arrived bool
	var err error
	switch {
	case req.GPS != nil:
		arrived, err = s.eng.TrackPositionCtx(r.Context(), index.RideID(req.RideID), req.GPS.point())
	case req.Now != nil:
		arrived, err = s.eng.TrackCtx(r.Context(), index.RideID(req.RideID), *req.Now)
	default:
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "track needs now or gps"})
		return
	}
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, TrackResponse{Arrived: arrived})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.eng.Metrics())
}

// HealthResponse is the GET /v1/healthz body. Beyond the static
// discretization facts it carries uptime and the cumulative engine
// counters, so a load balancer (or a human) can tell a wedged engine —
// uptime climbing, counters frozen — from an idle one. With an SLO
// engine wired (WithSLO), Status is the worst objective state
// (ok/warn/page) instead of the static "ok" — a load balancer draining
// on status != "ok" then sheds from a latency-burning instance.
type HealthResponse struct {
	Status        string       `json:"status"`
	UptimeSeconds float64      `json:"uptime_seconds"`
	ActiveRides   int          `json:"active_rides"`
	Clusters      int          `json:"clusters"`
	Landmarks     int          `json:"landmarks"`
	EpsilonM      float64      `json:"epsilon_m"`
	Engine        core.Metrics `json:"engine"`
	LookToBook    float64      `json:"look_to_book"`
	MatchRate     float64      `json:"match_rate"`
	// Audit summarizes the invariant auditor (WithAuditor): cumulative
	// violation count and the last sweep's coverage. Any violation ever
	// found escalates Status to "page".
	Audit *audit.Health `json:"audit,omitempty"`
	// Build identifies the running binary (ldflags-stamped version and
	// commit, plus the Go toolchain) — the same identity the
	// xar_build_info metric carries.
	Build telemetry.Build `json:"build"`
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	d := s.eng.Disc()
	m := s.eng.Metrics()
	resp := HealthResponse{
		Status:        s.healthStatus(),
		UptimeSeconds: time.Since(s.started).Seconds(),
		ActiveRides:   s.eng.NumRides(),
		Clusters:      d.NumClusters(),
		Landmarks:     len(d.Landmarks),
		EpsilonM:      d.Epsilon(),
		Engine:        m,
		LookToBook:    m.LookToBookRatio(),
		MatchRate:     m.MatchRate(),
		Build:         s.build,
	}
	if s.auditor != nil {
		h := s.auditor.Health()
		resp.Audit = &h
	}
	writeJSON(w, http.StatusOK, resp)
}

// --- plumbing ---

func decode(w http.ResponseWriter, r *http.Request, v interface{}) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("bad request body: %v", err)})
		return false
	}
	return true
}

func pathID(w http.ResponseWriter, r *http.Request) (int64, bool) {
	id, err := strconv.ParseInt(r.PathValue("id"), 10, 64)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "invalid ride id"})
		return 0, false
	}
	return id, true
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeErr maps engine errors onto HTTP statuses.
func writeErr(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, core.ErrUnknownRide):
		status = http.StatusNotFound
	case errors.Is(err, core.ErrNotServable),
		errors.Is(err, core.ErrUnreachable):
		status = http.StatusUnprocessableEntity
	case errors.Is(err, core.ErrRideFull),
		errors.Is(err, core.ErrNoLongerFeasible),
		errors.Is(err, core.ErrDetourExceeded):
		status = http.StatusConflict
	default:
		// Validation failures from the engine are client errors.
		status = http.StatusBadRequest
	}
	writeJSON(w, status, errorBody{Error: err.Error()})
}
