package landmark

import (
	"testing"

	"xar/internal/geo"
	"xar/internal/roadnet"
)

func testCity(t *testing.T) *roadnet.City {
	t.Helper()
	city, err := roadnet.GenerateCity(roadnet.DefaultCityConfig(30, 18, 42))
	if err != nil {
		t.Fatal(err)
	}
	return city
}

func TestValidate(t *testing.T) {
	if err := (Config{MinSeparation: -1}).Validate(); err == nil {
		t.Fatal("negative separation must be rejected")
	}
	if err := (Config{MaxLandmarks: -1}).Validate(); err == nil {
		t.Fatal("negative cap must be rejected")
	}
	if err := (Config{MinSeparation: 100}).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestExtractEmptyGraph(t *testing.T) {
	if _, err := Extract(&roadnet.Graph{}, Config{MinSeparation: 100}); err == nil {
		t.Fatal("empty graph must error")
	}
}

func TestExtractRespectsMinSeparation(t *testing.T) {
	city := testCity(t)
	const f = 400.0
	lms, err := Extract(city.Graph, Config{MinSeparation: f})
	if err != nil {
		t.Fatal(err)
	}
	if len(lms) < 10 {
		t.Fatalf("only %d landmarks extracted", len(lms))
	}
	for i := range lms {
		for j := i + 1; j < len(lms); j++ {
			if d := geo.Haversine(lms[i].Point, lms[j].Point); d < f {
				t.Fatalf("landmarks %d,%d at %.1f m < f=%.0f", i, j, d, f)
			}
		}
	}
}

func TestExtractIsMaximal(t *testing.T) {
	// Every node must either be a landmark or be within f of one:
	// otherwise the greedy filter skipped a legal candidate.
	city := testCity(t)
	const f = 400.0
	lms, err := Extract(city.Graph, Config{MinSeparation: f})
	if err != nil {
		t.Fatal(err)
	}
	g := city.Graph
	for i := 0; i < g.NumNodes(); i++ {
		p := g.Point(roadnet.NodeID(i))
		covered := false
		for _, lm := range lms {
			if geo.Haversine(p, lm.Point) < f {
				covered = true
				break
			}
		}
		if !covered {
			t.Fatalf("node %d not covered by any landmark within f", i)
		}
	}
}

func TestExtractDeterministic(t *testing.T) {
	city := testCity(t)
	a, err := Extract(city.Graph, Config{MinSeparation: 300})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Extract(city.Graph, Config{MinSeparation: 300})
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("non-deterministic count: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Node != b[i].Node {
			t.Fatalf("non-deterministic landmark %d: node %d vs %d", i, a[i].Node, b[i].Node)
		}
	}
}

func TestExtractIDsAreDense(t *testing.T) {
	city := testCity(t)
	lms, err := Extract(city.Graph, Config{MinSeparation: 300})
	if err != nil {
		t.Fatal(err)
	}
	for i, lm := range lms {
		if lm.ID != i {
			t.Fatalf("landmark %d has ID %d", i, lm.ID)
		}
	}
}

func TestExtractScoreOrdering(t *testing.T) {
	city := testCity(t)
	lms, err := Extract(city.Graph, Config{MinSeparation: 300})
	if err != nil {
		t.Fatal(err)
	}
	// Greedy extraction in decreasing score order means the sequence of
	// kept scores is non-increasing.
	for i := 1; i < len(lms); i++ {
		if lms[i].Score > lms[i-1].Score+1e-9 {
			t.Fatalf("landmark %d score %.3f > previous %.3f", i, lms[i].Score, lms[i-1].Score)
		}
	}
}

func TestMaxLandmarksCap(t *testing.T) {
	city := testCity(t)
	lms, err := Extract(city.Graph, Config{MinSeparation: 100, MaxLandmarks: 25})
	if err != nil {
		t.Fatal(err)
	}
	if len(lms) != 25 {
		t.Fatalf("cap 25 yielded %d landmarks", len(lms))
	}
}

func TestHotspotBias(t *testing.T) {
	city := testCity(t)
	center := city.Graph.BBox().Center()
	with, err := Extract(city.Graph, Config{MinSeparation: 100, MaxLandmarks: 30, Hotspots: []geo.Point{center}})
	if err != nil {
		t.Fatal(err)
	}
	without, err := Extract(city.Graph, Config{MinSeparation: 100, MaxLandmarks: 30})
	if err != nil {
		t.Fatal(err)
	}
	avgDist := func(lms []Landmark) float64 {
		var s float64
		for _, lm := range lms {
			s += geo.Haversine(lm.Point, center)
		}
		return s / float64(len(lms))
	}
	if avgDist(with) >= avgDist(without) {
		t.Fatalf("hotspot bias ineffective: with=%.0f without=%.0f", avgDist(with), avgDist(without))
	}
}

func TestZeroSeparationKeepsAll(t *testing.T) {
	city := testCity(t)
	lms, err := Extract(city.Graph, Config{MinSeparation: 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(lms) != city.Graph.NumNodes() {
		t.Fatalf("zero separation kept %d of %d nodes", len(lms), city.Graph.NumNodes())
	}
}

func TestPointsAndNodes(t *testing.T) {
	city := testCity(t)
	lms, err := Extract(city.Graph, Config{MinSeparation: 500})
	if err != nil {
		t.Fatal(err)
	}
	pts := Points(lms)
	ns := Nodes(lms)
	if len(pts) != len(lms) || len(ns) != len(lms) {
		t.Fatal("length mismatch")
	}
	for i := range lms {
		if pts[i] != lms[i].Point || ns[i] != lms[i].Node {
			t.Fatalf("element %d mismatch", i)
		}
	}
}

func TestLargeSeparationFewLandmarks(t *testing.T) {
	city := testCity(t)
	small, _ := Extract(city.Graph, Config{MinSeparation: 200})
	large, _ := Extract(city.Graph, Config{MinSeparation: 1500})
	if len(large) >= len(small) {
		t.Fatalf("larger f must yield fewer landmarks: f=200→%d, f=1500→%d", len(small), len(large))
	}
}
