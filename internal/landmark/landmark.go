// Package landmark implements landmark extraction and filtering — the
// middle tier of the XAR three-tiered region discretization
// (Definition 2 of the paper).
//
// The paper queries Google Places for ~30,000 points of interest and
// prunes them to ~16,000 significant ones (bus stops, stations, big
// stores). This reproduction extracts landmarks from the road network
// itself: each intersection receives a deterministic importance score
// from its connectivity and road classes, and a minimum-separation filter
// then enforces the paper's requirement that no two landmarks are closer
// than f.
package landmark

import (
	"fmt"
	"sort"

	"xar/internal/geo"
	"xar/internal/roadnet"
)

// Landmark is a filtered point of interest. ID is dense (the i-th
// landmark of a set has ID i), and the paper's tie-breaking rule —
// "choose the one with the lowest number in an ordering imposed on the
// set of landmarks" — uses exactly this ID order.
type Landmark struct {
	ID    int
	Node  roadnet.NodeID // road node the landmark sits on
	Point geo.Point
	Score float64 // extraction importance (higher = extracted earlier)
}

// Config controls extraction.
type Config struct {
	// MinSeparation is the paper's f parameter: no two landmarks may be
	// within f meters (straight-line) of each other.
	MinSeparation float64
	// MaxLandmarks caps the number extracted (0 = no cap). The paper
	// prunes 30k candidates to 16k; the cap plays that role.
	MaxLandmarks int
	// Hotspots optionally bias scores toward demand centers, mimicking
	// the prevalence of real POIs in busy areas.
	Hotspots []geo.Point
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.MinSeparation < 0 {
		return fmt.Errorf("landmark: MinSeparation must be >= 0, got %v", c.MinSeparation)
	}
	if c.MaxLandmarks < 0 {
		return fmt.Errorf("landmark: MaxLandmarks must be >= 0, got %v", c.MaxLandmarks)
	}
	return nil
}

// Extract scores every node of the graph and returns the filtered
// landmark set: a maximal set of nodes, in decreasing score order, such
// that every pair is at least cfg.MinSeparation apart. The result is
// deterministic for a given graph and config.
func Extract(g *roadnet.Graph, cfg Config) ([]Landmark, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if g.NumNodes() == 0 {
		return nil, fmt.Errorf("landmark: empty graph")
	}

	type cand struct {
		node  roadnet.NodeID
		score float64
	}
	cands := make([]cand, 0, g.NumNodes())
	for i := 0; i < g.NumNodes(); i++ {
		id := roadnet.NodeID(i)
		cands = append(cands, cand{node: id, score: scoreNode(g, id, cfg.Hotspots)})
	}
	// Decreasing score; ties broken by node ID for determinism.
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].score != cands[j].score {
			return cands[i].score > cands[j].score
		}
		return cands[i].node < cands[j].node
	})

	// Greedy minimum-separation filter, accelerated with a bucket grid so
	// extraction is near-linear rather than quadratic.
	var kept []Landmark
	bucket := newSepGrid(g.BBox(), cfg.MinSeparation)
	for _, c := range cands {
		if cfg.MaxLandmarks > 0 && len(kept) >= cfg.MaxLandmarks {
			break
		}
		p := g.Point(c.node)
		if cfg.MinSeparation > 0 && bucket.hasWithin(p, cfg.MinSeparation) {
			continue
		}
		lm := Landmark{ID: len(kept), Node: c.node, Point: p, Score: c.score}
		kept = append(kept, lm)
		bucket.add(p)
	}
	if len(kept) == 0 {
		return nil, fmt.Errorf("landmark: extraction produced no landmarks")
	}
	return kept, nil
}

// scoreNode computes the deterministic importance of a node: total degree
// weighted by the speed class of incident roads, plus a hotspot-proximity
// bonus. Highway/avenue junctions — the analogue of stations and major
// stops — score highest.
func scoreNode(g *roadnet.Graph, id roadnet.NodeID, hotspots []geo.Point) float64 {
	var s float64
	classWeight := func(c roadnet.RoadClass) float64 {
		switch c {
		case roadnet.ClassHighway:
			return 3.0
		case roadnet.ClassAvenue:
			return 2.0
		case roadnet.ClassStreet:
			return 1.0
		default:
			return 0.5
		}
	}
	for _, e := range g.Out(id) {
		s += classWeight(e.Class)
	}
	for _, e := range g.In(id) {
		s += classWeight(e.Class)
	}
	p := g.Point(id)
	for _, h := range hotspots {
		d := geo.Haversine(p, h)
		// 1 bonus point at the hotspot decaying to ~0 at 2 km.
		if d < 2000 {
			s += (2000 - d) / 2000
		}
	}
	return s
}

// sepGrid is a uniform bucket grid supporting "is any kept landmark
// within r of p" queries for the separation filter.
type sepGrid struct {
	box        geo.BBox
	cell       float64
	dLat, dLng float64
	rows, cols int
	buckets    map[int][]geo.Point
}

func newSepGrid(box geo.BBox, sep float64) *sepGrid {
	cell := sep
	if cell <= 0 {
		cell = 100
	}
	box = box.Pad(cell)
	midLat := (box.MinLat + box.MaxLat) / 2
	g := &sepGrid{
		box:     box,
		cell:    cell,
		dLat:    cell / geo.MetersPerDegreeLat(),
		dLng:    cell / geo.MetersPerDegreeLng(midLat),
		buckets: map[int][]geo.Point{},
	}
	g.rows = int((box.MaxLat-box.MinLat)/g.dLat) + 2
	g.cols = int((box.MaxLng-box.MinLng)/g.dLng) + 2
	return g
}

func (g *sepGrid) rc(p geo.Point) (int, int) {
	r := int((p.Lat - g.box.MinLat) / g.dLat)
	c := int((p.Lng - g.box.MinLng) / g.dLng)
	if r < 0 {
		r = 0
	}
	if r >= g.rows {
		r = g.rows - 1
	}
	if c < 0 {
		c = 0
	}
	if c >= g.cols {
		c = g.cols - 1
	}
	return r, c
}

func (g *sepGrid) add(p geo.Point) {
	r, c := g.rc(p)
	k := r*g.cols + c
	g.buckets[k] = append(g.buckets[k], p)
}

func (g *sepGrid) hasWithin(p geo.Point, radius float64) bool {
	r0, c0 := g.rc(p)
	span := int(radius/g.cell) + 1
	for r := r0 - span; r <= r0+span; r++ {
		if r < 0 || r >= g.rows {
			continue
		}
		for c := c0 - span; c <= c0+span; c++ {
			if c < 0 || c >= g.cols {
				continue
			}
			for _, q := range g.buckets[r*g.cols+c] {
				if geo.Haversine(p, q) < radius {
					return true
				}
			}
		}
	}
	return false
}

// Points extracts the geometry of a landmark set.
func Points(lms []Landmark) []geo.Point {
	pts := make([]geo.Point, len(lms))
	for i, lm := range lms {
		pts[i] = lm.Point
	}
	return pts
}

// Nodes extracts the road nodes of a landmark set.
func Nodes(lms []Landmark) []roadnet.NodeID {
	ns := make([]roadnet.NodeID, len(lms))
	for i, lm := range lms {
		ns[i] = lm.Node
	}
	return ns
}
