package cluster

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// planarDist builds a Euclidean DistFunc over 2-D points — a metric, as
// the algorithms require.
func planarDist(pts [][2]float64) DistFunc {
	return func(i, j int) float64 {
		dx := pts[i][0] - pts[j][0]
		dy := pts[i][1] - pts[j][1]
		return math.Hypot(dx, dy)
	}
}

func randPoints(r *rand.Rand, n int, scale float64) [][2]float64 {
	pts := make([][2]float64, n)
	for i := range pts {
		pts[i] = [2]float64{r.Float64() * scale, r.Float64() * scale}
	}
	return pts
}

func TestGreedyValidation(t *testing.T) {
	d := planarDist([][2]float64{{0, 0}})
	if _, err := Greedy(0, d, 1); err == nil {
		t.Fatal("n=0 must error")
	}
	if _, err := Greedy(1, d, 0); err == nil {
		t.Fatal("k=0 must error")
	}
}

func TestGreedyKGreaterThanN(t *testing.T) {
	pts := [][2]float64{{0, 0}, {1, 0}, {2, 0}}
	res, err := Greedy(3, planarDist(pts), 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.K != 3 || res.Radius != 0 {
		t.Fatalf("k>n: K=%d radius=%v, want 3/0", res.K, res.Radius)
	}
}

func TestGreedyBasicProperties(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	pts := randPoints(r, 60, 1000)
	d := planarDist(pts)
	for _, k := range []int{1, 2, 5, 10, 30, 60} {
		res, err := Greedy(60, d, k)
		if err != nil {
			t.Fatal(err)
		}
		if res.K != k {
			t.Fatalf("k=%d: got K=%d", k, res.K)
		}
		if err := res.Validate(60); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		// Every item is within Radius of its assigned center, and the
		// assignment is to the nearest center.
		for i := 0; i < 60; i++ {
			c := res.Centers[res.Assign[i]]
			di := d(i, c)
			if di > res.Radius+1e-9 {
				t.Fatalf("k=%d item %d at %v > radius %v", k, i, di, res.Radius)
			}
			for _, oc := range res.Centers {
				if d(i, oc) < di-1e-9 {
					t.Fatalf("k=%d item %d not assigned to nearest center", k, i)
				}
			}
		}
	}
}

func TestGreedyRadiusMonotoneInK(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	pts := randPoints(r, 80, 1000)
	d := planarDist(pts)
	prev := math.Inf(1)
	for k := 1; k <= 80; k += 4 {
		res, err := Greedy(80, d, k)
		if err != nil {
			t.Fatal(err)
		}
		// Gonzalez radii are non-increasing in k because the first k
		// centers are a prefix of the first k+1.
		if res.Radius > prev+1e-9 {
			t.Fatalf("radius increased at k=%d: %v > %v", k, res.Radius, prev)
		}
		prev = res.Radius
	}
}

// exactKCenterRadius computes the optimal k-center radius by brute force
// over all center subsets (small n only).
func exactKCenterRadius(n int, d DistFunc, k int) float64 {
	best := math.Inf(1)
	var rec func(start int, chosen []int)
	rec = func(start int, chosen []int) {
		if len(chosen) == k {
			worst := 0.0
			for i := 0; i < n; i++ {
				nearest := math.Inf(1)
				for _, c := range chosen {
					if dd := d(i, c); dd < nearest {
						nearest = dd
					}
				}
				if nearest > worst {
					worst = nearest
				}
			}
			if worst < best {
				best = worst
			}
			return
		}
		for i := start; i < n; i++ {
			rec(i+1, append(chosen, i))
		}
	}
	rec(0, nil)
	return best
}

func TestGreedyTwoApproximation(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 25; trial++ {
		n := 8 + r.Intn(4)
		pts := randPoints(r, n, 100)
		d := planarDist(pts)
		for k := 1; k <= 4; k++ {
			res, err := Greedy(n, d, k)
			if err != nil {
				t.Fatal(err)
			}
			opt := exactKCenterRadius(n, d, k)
			if res.Radius > 2*opt+1e-9 {
				t.Fatalf("trial %d n=%d k=%d: greedy radius %v > 2×OPT %v", trial, n, k, res.Radius, opt)
			}
		}
	}
}

func TestGreedySearchValidation(t *testing.T) {
	d := planarDist([][2]float64{{0, 0}})
	if _, _, err := GreedySearch(0, d, 1); err == nil {
		t.Fatal("n=0 must error")
	}
	if _, _, err := GreedySearch(1, d, -1); err == nil {
		t.Fatal("negative delta must error")
	}
}

func TestGreedySearchSingleItem(t *testing.T) {
	res, trace, err := GreedySearch(1, planarDist([][2]float64{{5, 5}}), 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.K != 1 || len(trace) == 0 {
		t.Fatalf("single item: K=%d trace=%v", res.K, trace)
	}
}

func TestGreedySearchTraceLogarithmic(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	n := 500
	pts := randPoints(r, n, 10000)
	_, trace, err := GreedySearch(n, planarDist(pts), 800)
	if err != nil {
		t.Fatal(err)
	}
	// Binary search over [1,500] probes at most ⌈log2(500)⌉+1 = 10 values.
	if len(trace) > 10 {
		t.Fatalf("trace has %d probes, want ≤ 10 (log₂ n)", len(trace))
	}
}

func TestGreedySearchBicriteriaGuarantee(t *testing.T) {
	// Theorem 6: k_ALG ≤ k_OPT and max intra-cluster distance ≤ 4δ.
	// k_OPT comes from the exact clique-partition solver.
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 40; trial++ {
		n := 6 + r.Intn(7) // 6..12
		pts := randPoints(r, n, 100)
		d := planarDist(pts)
		delta := 20 + r.Float64()*60

		res, _, err := GreedySearch(n, d, delta)
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Validate(n); err != nil {
			t.Fatal(err)
		}
		opt, err := Exact(n, d, delta)
		if err != nil {
			t.Fatal(err)
		}
		if res.K > opt.K {
			t.Fatalf("trial %d: k_ALG=%d > k_OPT=%d (δ=%.1f)", trial, res.K, opt.K, delta)
		}
		if intra := res.MaxIntra(d); intra > 4*delta+1e-9 {
			t.Fatalf("trial %d: max intra %v > 4δ=%v", trial, intra, 4*delta)
		}
	}
}

func TestGreedySearchRadiusWithinTwoDelta(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	n := 100
	pts := randPoints(r, n, 5000)
	d := planarDist(pts)
	res, _, err := GreedySearch(n, d, 600)
	if err != nil {
		t.Fatal(err)
	}
	if res.Radius > 2*600 {
		t.Fatalf("chosen clustering radius %v > 2δ", res.Radius)
	}
}

func TestExactValidation(t *testing.T) {
	d := planarDist([][2]float64{{0, 0}})
	if _, err := Exact(0, d, 1); err == nil {
		t.Fatal("n=0 must error")
	}
	if _, err := Exact(MaxExactItems+1, d, 1); err == nil {
		t.Fatal("oversize instance must error")
	}
	if _, err := Exact(1, d, -1); err == nil {
		t.Fatal("negative delta must error")
	}
}

func TestExactKnownInstances(t *testing.T) {
	// Three well-separated pairs: δ=1.5 pairs them up; δ=0.5 isolates all.
	pts := [][2]float64{{0, 0}, {1, 0}, {10, 0}, {11, 0}, {20, 0}, {21, 0}}
	d := planarDist(pts)
	res, err := Exact(6, d, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if res.K != 3 {
		t.Fatalf("δ=1.5: K=%d, want 3", res.K)
	}
	res, err = Exact(6, d, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if res.K != 6 {
		t.Fatalf("δ=0.5: K=%d, want 6", res.K)
	}
	res, err = Exact(6, d, 100)
	if err != nil {
		t.Fatal(err)
	}
	if res.K != 1 {
		t.Fatalf("δ=100: K=%d, want 1", res.K)
	}
}

func TestExactRespectsDelta(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		n := 4 + r.Intn(8)
		pts := randPoints(r, n, 50)
		d := planarDist(pts)
		delta := 10 + r.Float64()*30
		res, err := Exact(n, d, delta)
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Validate(n); err != nil {
			t.Fatal(err)
		}
		if intra := res.MaxIntra(d); intra > delta+1e-9 {
			t.Fatalf("exact solution violates δ: %v > %v", intra, delta)
		}
	}
}

func TestExactOptimalityAgainstGreedyLowerBound(t *testing.T) {
	// Any valid clustering has ≥ K_exact clusters. Cross-check by trying
	// to beat the exact answer with a brute-force search over assignments
	// on tiny instances.
	r := rand.New(rand.NewSource(8))
	for trial := 0; trial < 15; trial++ {
		n := 4 + r.Intn(3) // 4..6
		pts := randPoints(r, n, 50)
		d := planarDist(pts)
		delta := 15 + r.Float64()*25
		res, err := Exact(n, d, delta)
		if err != nil {
			t.Fatal(err)
		}
		best := bruteMinClusters(n, d, delta)
		if res.K != best {
			t.Fatalf("trial %d: exact=%d brute=%d", trial, res.K, best)
		}
	}
}

// bruteMinClusters enumerates all assignments (Bell-number growth; tiny n
// only) to find the true minimum cluster count.
func bruteMinClusters(n int, d DistFunc, delta float64) int {
	assign := make([]int, n)
	best := n
	var rec func(i, maxUsed int)
	rec = func(i, maxUsed int) {
		if maxUsed >= best {
			return
		}
		if i == n {
			best = maxUsed
			return
		}
		for c := 0; c <= maxUsed && c < best; c++ {
			ok := true
			for j := 0; j < i; j++ {
				if assign[j] == c && d(i, j) > delta {
					ok = false
					break
				}
			}
			if ok {
				assign[i] = c
				nm := maxUsed
				if c == maxUsed {
					nm++
				}
				rec(i+1, nm)
			}
		}
	}
	rec(0, 0)
	return best
}

func TestFeasibleK(t *testing.T) {
	pts := [][2]float64{{0, 0}, {1, 0}, {10, 0}, {11, 0}}
	d := planarDist(pts)
	ok, err := FeasibleK(4, d, 1.5, 2)
	if err != nil || !ok {
		t.Fatalf("2 clusters at δ=1.5 should be feasible: %v %v", ok, err)
	}
	ok, err = FeasibleK(4, d, 1.5, 1)
	if err != nil || ok {
		t.Fatalf("1 cluster at δ=1.5 should be infeasible: %v %v", ok, err)
	}
}

func TestQuickBicriteria(t *testing.T) {
	// Property: for random small instances, GreedySearch never exceeds
	// the exact optimum cluster count and never exceeds the 4δ stretch.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 5 + r.Intn(6)
		pts := randPoints(r, n, 100)
		d := planarDist(pts)
		delta := 15 + r.Float64()*40
		res, _, err := GreedySearch(n, d, delta)
		if err != nil {
			return false
		}
		opt, err := Exact(n, d, delta)
		if err != nil {
			return false
		}
		return res.K <= opt.K && res.MaxIntra(d) <= 4*delta+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestMembersPartition(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	pts := randPoints(r, 40, 500)
	res, err := Greedy(40, planarDist(pts), 7)
	if err != nil {
		t.Fatal(err)
	}
	seen := make([]bool, 40)
	total := 0
	for _, m := range res.Members() {
		for _, i := range m {
			if seen[i] {
				t.Fatalf("item %d in two clusters", i)
			}
			seen[i] = true
			total++
		}
	}
	if total != 40 {
		t.Fatalf("members cover %d of 40 items", total)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	res := Result{K: 2, Assign: []int{0, 1, 5}}
	if err := res.Validate(3); err == nil {
		t.Fatal("out-of-range cluster must fail validation")
	}
	res = Result{K: 3, Assign: []int{0, 1, 1}}
	if err := res.Validate(3); err == nil {
		t.Fatal("empty cluster must fail validation")
	}
	res = Result{K: 2, Assign: []int{0, 1}}
	if err := res.Validate(3); err == nil {
		t.Fatal("short assignment must fail validation")
	}
}
