package cluster

import (
	"fmt"
	"math"
	"math/bits"
)

// MaxExactItems bounds the instance size accepted by Exact. The dynamic
// program enumerates subsets (O(3ⁿ) time, O(2ⁿ) space), so 20 items is
// already ~3.5 G operations; tests use ≤ 14.
const MaxExactItems = 20

// Exact solves CLUSTERMINIMIZATION optimally: the minimum number of
// clusters such that every intra-cluster pair is within delta. It is
// exactly minimum clique partition on the δ-threshold graph (Theorem 4 of
// the paper), solved by subset dynamic programming over cliques.
//
// Only use for small n (tests, sanity checks): see MaxExactItems.
func Exact(n int, dist DistFunc, delta float64) (Result, error) {
	if n <= 0 {
		return Result{}, fmt.Errorf("cluster: n must be positive, got %d", n)
	}
	if n > MaxExactItems {
		return Result{}, fmt.Errorf("cluster: exact solver limited to %d items, got %d", MaxExactItems, n)
	}
	if delta < 0 || math.IsNaN(delta) {
		return Result{}, fmt.Errorf("cluster: delta must be >= 0, got %v", delta)
	}

	// adj[i] = bitmask of items within delta of i (the threshold graph).
	adj := make([]uint32, n)
	for i := 0; i < n; i++ {
		adj[i] |= 1 << i
		for j := i + 1; j < n; j++ {
			if dist(i, j) <= delta {
				adj[i] |= 1 << j
				adj[j] |= 1 << i
			}
		}
	}

	full := uint32(1)<<n - 1
	// isClique[S] — computed incrementally: S is a clique iff S minus its
	// lowest bit is a clique and that bit is adjacent to all of S.
	isClique := make([]bool, full+1)
	isClique[0] = true
	for s := uint32(1); s <= full; s++ {
		low := uint32(bits.TrailingZeros32(s))
		rest := s &^ (1 << low)
		isClique[s] = isClique[rest] && rest&^adj[low] == 0
	}

	// dp[S] = minimum cliques to cover S; choice[S] = the clique used.
	const inf = math.MaxInt32
	dp := make([]int32, full+1)
	choice := make([]uint32, full+1)
	for s := uint32(1); s <= full; s++ {
		dp[s] = inf
		// The lowest uncovered item must be in some clique of the cover:
		// iterate over all subsets of S containing that item.
		low := uint32(1) << uint(bits.TrailingZeros32(s))
		// Enumerate subsets T of S with low ∈ T.
		for t := s; t > 0; t = (t - 1) & s {
			if t&low == 0 || !isClique[t] {
				continue
			}
			if cand := dp[s&^t] + 1; cand < dp[s] {
				dp[s] = cand
				choice[s] = t
			}
		}
	}

	res := Result{Assign: make([]int, n), Radius: math.NaN()}
	for s := full; s > 0; {
		t := choice[s]
		for i := 0; i < n; i++ {
			if t&(1<<i) != 0 {
				res.Assign[i] = res.K
			}
		}
		res.Centers = append(res.Centers, -1)
		res.K++
		s &^= t
	}
	return res, nil
}

// FeasibleK reports whether the items can be partitioned into at most k
// clusters of diameter ≤ delta — a convenience wrapper over Exact used in
// property tests.
func FeasibleK(n int, dist DistFunc, delta float64, k int) (bool, error) {
	res, err := Exact(n, dist, delta)
	if err != nil {
		return false, err
	}
	return res.K <= k, nil
}
