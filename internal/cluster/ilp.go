package cluster

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// ILPModel materializes the paper's integer linear program for
// CLUSTERMINIMIZATION (§V):
//
//	minimize m
//	s.t.  Σ_j y_j ≤ m
//	      x_{i,j} ≤ y_j                        ∀ i ∈ V, j ∈ [n]
//	      Σ_j x_{i,j} = 1                      ∀ i ∈ V
//	      d_{i,i'} (x_{i,j} + x_{i',j} − 1) ≤ δ ∀ i, i' ∈ V, j ∈ [n]
//	      x, y ∈ {0,1}
//
// The model is useful for inspection, for export to external solvers,
// and as the ground-truth statement the exact solvers implement.
type ILPModel struct {
	N     int
	Delta float64
	// Conflicts lists the landmark pairs with d > δ, i.e. the pairs the
	// fourth constraint family forbids from sharing any cluster.
	Conflicts [][2]int
}

// NewILPModel builds the model for an instance.
func NewILPModel(n int, dist DistFunc, delta float64) (*ILPModel, error) {
	if n <= 0 {
		return nil, fmt.Errorf("cluster: n must be positive, got %d", n)
	}
	if delta < 0 || math.IsNaN(delta) {
		return nil, fmt.Errorf("cluster: delta must be >= 0, got %v", delta)
	}
	m := &ILPModel{N: n, Delta: delta}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if dist(i, j) > delta {
				m.Conflicts = append(m.Conflicts, [2]int{i, j})
			}
		}
	}
	return m, nil
}

// NumVariables returns the variable count: n² assignment variables plus
// n cluster indicators plus the objective m.
func (m *ILPModel) NumVariables() int { return m.N*m.N + m.N + 1 }

// NumConstraints returns the constraint count of the four families.
func (m *ILPModel) NumConstraints() int {
	// 1 (Σy ≤ m) + n² (x ≤ y) + n (Σx = 1) + |conflicts|·n (pair bans).
	return 1 + m.N*m.N + m.N + len(m.Conflicts)*m.N
}

// LPFormat renders the model in CPLEX LP text format, ready for an
// external solver. Only the conflict pairs materialize the distance
// constraints (pairs within δ impose nothing).
func (m *ILPModel) LPFormat() string {
	var b strings.Builder
	b.WriteString("Minimize\n obj: m\nSubject To\n")
	// Σ_j y_j − m ≤ 0
	b.WriteString(" c_count:")
	for j := 0; j < m.N; j++ {
		fmt.Fprintf(&b, " + y%d", j)
	}
	b.WriteString(" - m <= 0\n")
	// x_{i,j} ≤ y_j
	for i := 0; i < m.N; i++ {
		for j := 0; j < m.N; j++ {
			fmt.Fprintf(&b, " c_open_%d_%d: x%d_%d - y%d <= 0\n", i, j, i, j, j)
		}
	}
	// Σ_j x_{i,j} = 1
	for i := 0; i < m.N; i++ {
		fmt.Fprintf(&b, " c_assign_%d:", i)
		for j := 0; j < m.N; j++ {
			fmt.Fprintf(&b, " + x%d_%d", i, j)
		}
		b.WriteString(" = 1\n")
	}
	// Conflict pairs: x_{i,j} + x_{i',j} ≤ 1
	for _, c := range m.Conflicts {
		for j := 0; j < m.N; j++ {
			fmt.Fprintf(&b, " c_far_%d_%d_%d: x%d_%d + x%d_%d <= 1\n",
				c[0], c[1], j, c[0], j, c[1], j)
		}
	}
	b.WriteString("Binary\n m\n")
	for j := 0; j < m.N; j++ {
		fmt.Fprintf(&b, " y%d\n", j)
	}
	for i := 0; i < m.N; i++ {
		for j := 0; j < m.N; j++ {
			fmt.Fprintf(&b, " x%d_%d\n", i, j)
		}
	}
	b.WriteString("End\n")
	return b.String()
}

// BranchAndBound solves CLUSTERMINIMIZATION exactly with a depth-first
// branch-and-bound over landmark→cluster assignments. It handles larger
// instances than the O(3ⁿ) subset DP (Exact): the search
//
//   - orders landmarks by decreasing conflict degree (hard ones first),
//   - seeds the incumbent with the GreedySearch solution re-checked at
//     the true δ (when feasible) so pruning starts tight,
//   - prunes with clusters-used + an independent-set lower bound on the
//     unassigned remainder (mutually-conflicting landmarks need distinct
//     clusters), and
//   - breaks cluster symmetry by allowing at most one new cluster per
//     branch level.
//
// maxNodes bounds the search-tree size; exceeding it returns an error
// (the caller can fall back to the bicriteria GreedySearch).
func BranchAndBound(n int, dist DistFunc, delta float64, maxNodes int) (Result, error) {
	if n <= 0 {
		return Result{}, fmt.Errorf("cluster: n must be positive, got %d", n)
	}
	if delta < 0 || math.IsNaN(delta) {
		return Result{}, fmt.Errorf("cluster: delta must be >= 0, got %v", delta)
	}
	if maxNodes <= 0 {
		maxNodes = 5_000_000
	}

	// Conflict adjacency on the "too far" graph.
	conflict := make([][]bool, n)
	degree := make([]int, n)
	for i := range conflict {
		conflict[i] = make([]bool, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if dist(i, j) > delta {
				conflict[i][j] = true
				conflict[j][i] = true
				degree[i]++
				degree[j]++
			}
		}
	}

	// Assignment order: most conflicted first.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if degree[order[a]] != degree[order[b]] {
			return degree[order[a]] > degree[order[b]]
		}
		return order[a] < order[b]
	})

	// Incumbent: every landmark its own cluster, or the greedy solution
	// when it happens to satisfy the true δ.
	best := n
	bestAssign := make([]int, n)
	for i := range bestAssign {
		bestAssign[i] = i
	}
	if gs, _, err := GreedySearch(n, dist, delta); err == nil {
		if gs.MaxIntra(dist) <= delta && gs.K < best {
			best = gs.K
			copy(bestAssign, gs.Assign)
		}
	}

	assign := make([]int, n)
	for i := range assign {
		assign[i] = -1
	}
	members := make([][]int, 0, n)
	nodes := 0
	aborted := false

	// isLowerBound: greedy independent set (in the conflict graph) over
	// the unassigned suffix — each member needs its own cluster beyond
	// those compatible with existing ones... conservatively, members that
	// conflict with every open cluster AND each other need new clusters.
	lowerBound := func(pos int) int {
		var chosen []int
		for _, idx := range order[pos:] {
			ok := true
			for _, c := range chosen {
				if !conflict[idx][c] {
					ok = false
					break
				}
			}
			if ok {
				chosen = append(chosen, idx)
			}
		}
		// Members of the independent set that fit no open cluster demand
		// a brand-new one each.
		extra := 0
		for _, idx := range chosen {
			fits := false
			for _, mem := range members {
				compatible := true
				for _, m := range mem {
					if conflict[idx][m] {
						compatible = false
						break
					}
				}
				if compatible {
					fits = true
					break
				}
			}
			if !fits {
				extra++
			}
		}
		return len(members) + extra
	}

	var rec func(pos int)
	rec = func(pos int) {
		if aborted {
			return
		}
		nodes++
		if nodes > maxNodes {
			aborted = true
			return
		}
		if len(members) >= best {
			return
		}
		if pos == n {
			best = len(members)
			copy(bestAssign, assign)
			return
		}
		if lowerBound(pos) >= best {
			return
		}
		idx := order[pos]
		// Existing clusters.
		for ci, mem := range members {
			ok := true
			for _, m := range mem {
				if conflict[idx][m] {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			assign[idx] = ci
			members[ci] = append(members[ci], idx)
			rec(pos + 1)
			members[ci] = members[ci][:len(members[ci])-1]
			assign[idx] = -1
		}
		// One new cluster (symmetry-broken: new clusters are
		// interchangeable, so a single branch suffices).
		if len(members)+1 < best {
			assign[idx] = len(members)
			members = append(members, []int{idx})
			rec(pos + 1)
			members = members[:len(members)-1]
			assign[idx] = -1
		}
	}
	rec(0)
	if aborted {
		return Result{}, fmt.Errorf("cluster: branch-and-bound exceeded %d nodes", maxNodes)
	}

	res := Result{K: best, Assign: bestAssign, Radius: math.NaN()}
	res.Centers = make([]int, best)
	for i := range res.Centers {
		res.Centers[i] = -1
	}
	return res, nil
}
