package cluster

import (
	"math/rand"
	"strings"
	"testing"
)

func TestNewILPModelValidation(t *testing.T) {
	d := planarDist([][2]float64{{0, 0}})
	if _, err := NewILPModel(0, d, 1); err == nil {
		t.Fatal("n=0 must error")
	}
	if _, err := NewILPModel(1, d, -1); err == nil {
		t.Fatal("negative delta must error")
	}
}

func TestILPModelCounts(t *testing.T) {
	pts := [][2]float64{{0, 0}, {1, 0}, {10, 0}}
	m, err := NewILPModel(3, planarDist(pts), 1.5)
	if err != nil {
		t.Fatal(err)
	}
	// Conflicts: (0,2) and (1,2) — both 9+ apart; (0,1) is within δ.
	if len(m.Conflicts) != 2 {
		t.Fatalf("conflicts = %v", m.Conflicts)
	}
	if m.NumVariables() != 3*3+3+1 {
		t.Fatalf("variables = %d", m.NumVariables())
	}
	want := 1 + 9 + 3 + 2*3
	if m.NumConstraints() != want {
		t.Fatalf("constraints = %d, want %d", m.NumConstraints(), want)
	}
}

func TestILPLPFormat(t *testing.T) {
	pts := [][2]float64{{0, 0}, {10, 0}}
	m, err := NewILPModel(2, planarDist(pts), 1)
	if err != nil {
		t.Fatal(err)
	}
	lp := m.LPFormat()
	for _, frag := range []string{
		"Minimize", "obj: m", "Subject To",
		"+ y0 + y1 - m <= 0",
		"x0_0 - y0 <= 0",
		"+ x0_0 + x0_1 = 1",
		"x0_0 + x1_0 <= 1", // the conflict pair
		"Binary", "End",
	} {
		if !strings.Contains(lp, frag) {
			t.Fatalf("LP output missing %q:\n%s", frag, lp)
		}
	}
}

func TestBranchAndBoundValidation(t *testing.T) {
	d := planarDist([][2]float64{{0, 0}})
	if _, err := BranchAndBound(0, d, 1, 0); err == nil {
		t.Fatal("n=0 must error")
	}
	if _, err := BranchAndBound(1, d, -1, 0); err == nil {
		t.Fatal("negative delta must error")
	}
}

func TestBranchAndBoundMatchesExact(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	for trial := 0; trial < 40; trial++ {
		n := 4 + r.Intn(9) // 4..12: within Exact's comfortable range
		pts := randPoints(r, n, 100)
		d := planarDist(pts)
		delta := 15 + r.Float64()*50

		exact, err := Exact(n, d, delta)
		if err != nil {
			t.Fatal(err)
		}
		bnb, err := BranchAndBound(n, d, delta, 0)
		if err != nil {
			t.Fatal(err)
		}
		if bnb.K != exact.K {
			t.Fatalf("trial %d (n=%d δ=%.1f): bnb=%d exact=%d", trial, n, delta, bnb.K, exact.K)
		}
		if err := bnb.Validate(n); err != nil {
			t.Fatal(err)
		}
		if intra := bnb.MaxIntra(d); intra > delta+1e-9 {
			t.Fatalf("bnb solution violates δ: %v > %v", intra, delta)
		}
	}
}

func TestBranchAndBoundBeyondExactRange(t *testing.T) {
	// 30 items — beyond MaxExactItems — solved exactly; verify
	// feasibility and that GreedySearch's bicriteria answer never beats
	// it in cluster count at the true δ.
	r := rand.New(rand.NewSource(5))
	n := 30
	pts := randPoints(r, n, 300)
	d := planarDist(pts)
	delta := 80.0

	res, err := BranchAndBound(n, d, delta, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Validate(n); err != nil {
		t.Fatal(err)
	}
	if intra := res.MaxIntra(d); intra > delta+1e-9 {
		t.Fatalf("δ violated: %v", intra)
	}
	gs, _, err := GreedySearch(n, d, delta)
	if err != nil {
		t.Fatal(err)
	}
	// Theorem 6 from the other side: GreedySearch uses k_ALG ≤ k_OPT
	// clusters (it stretches δ instead).
	if gs.K > res.K {
		t.Fatalf("GreedySearch used %d clusters > exact optimum %d", gs.K, res.K)
	}
}

func TestBranchAndBoundNodeBudget(t *testing.T) {
	// A pathological budget must abort cleanly rather than hang.
	r := rand.New(rand.NewSource(6))
	n := 24
	pts := randPoints(r, n, 100)
	d := planarDist(pts)
	if _, err := BranchAndBound(n, d, 30, 10); err == nil {
		t.Fatal("a 10-node budget cannot solve a 24-item instance")
	}
}

func TestBranchAndBoundSingletons(t *testing.T) {
	// All points mutually conflicting: n clusters.
	pts := [][2]float64{{0, 0}, {100, 0}, {0, 100}, {100, 100}}
	res, err := BranchAndBound(4, planarDist(pts), 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.K != 4 {
		t.Fatalf("K = %d, want 4", res.K)
	}
	// All points compatible: one cluster.
	res, err = BranchAndBound(4, planarDist(pts), 1000, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.K != 1 {
		t.Fatalf("K = %d, want 1", res.K)
	}
}
