// Package cluster implements the CLUSTERMINIMIZATION problem of the XAR
// paper (§V): partition a set of landmarks into the minimum number of
// clusters such that every pair of landmarks in a cluster is within a
// driving distance δ.
//
// The problem is NP-complete (Theorem 4: it is minimum clique partition
// on the δ-threshold graph) and ln n hard to approximate in the number of
// clusters (Theorem 5), so the package provides:
//
//   - Greedy: the classic Gonzalez farthest-point 2-approximation for
//     METRIC K-CENTER, the subroutine of the paper's algorithm;
//   - GreedySearch: the paper's bicriteria algorithm — binary search on k
//     over log₂ n calls to Greedy — with the Theorem 6 guarantee
//     (k_ALG ≤ k_OPT, max intra-cluster distance ≤ 4δ);
//   - Exact: an exponential-time exact minimum clique partition used by
//     tests and small instances to validate the guarantee.
//
// Distances are supplied by a DistFunc, typically landmark-to-landmark
// shortest driving distances symmetrized with max(d(i→j), d(j→i)) so the
// triangle inequality the proofs rely on holds.
package cluster

import (
	"fmt"
	"math"
)

// DistFunc returns the distance between items i and j. It must be a
// metric: symmetric, non-negative, zero on the diagonal, and satisfy the
// triangle inequality (GreedySearch's guarantee depends on it).
type DistFunc func(i, j int) float64

// Result describes a clustering of n items.
type Result struct {
	// K is the number of clusters.
	K int
	// Assign maps each item to its cluster in [0, K).
	Assign []int
	// Centers holds the representative item of each cluster (for results
	// produced via k-center; -1 when not applicable).
	Centers []int
	// Radius is the maximum distance of any item to its assigned center
	// (k-center objective); NaN when not applicable.
	Radius float64
}

// Members returns the items of each cluster, in cluster order.
func (r Result) Members() [][]int {
	out := make([][]int, r.K)
	for i, c := range r.Assign {
		out[c] = append(out[c], i)
	}
	return out
}

// MaxIntra returns the maximum pairwise distance within any cluster — the
// quantity the paper bounds by 4δ (and calls ε). O(n²) but run once per
// pre-processing.
func (r Result) MaxIntra(dist DistFunc) float64 {
	var worst float64
	for _, members := range r.Members() {
		for a := 0; a < len(members); a++ {
			for b := a + 1; b < len(members); b++ {
				if d := dist(members[a], members[b]); d > worst {
					worst = d
				}
			}
		}
	}
	return worst
}

// Validate checks structural invariants of a Result against n items:
// every item assigned, cluster indices in range, every cluster non-empty.
func (r Result) Validate(n int) error {
	if len(r.Assign) != n {
		return fmt.Errorf("cluster: assignment covers %d of %d items", len(r.Assign), n)
	}
	seen := make([]bool, r.K)
	for i, c := range r.Assign {
		if c < 0 || c >= r.K {
			return fmt.Errorf("cluster: item %d assigned to cluster %d out of [0,%d)", i, c, r.K)
		}
		seen[c] = true
	}
	for c, ok := range seen {
		if !ok {
			return fmt.Errorf("cluster: cluster %d is empty", c)
		}
	}
	return nil
}

// Greedy is the Gonzalez farthest-point algorithm for METRIC K-CENTER:
// pick an arbitrary first center (item 0 — deterministic), then k−1 times
// pick the item farthest from its nearest chosen center. It guarantees a
// radius at most twice the optimal k-center radius.
//
// Runs in O(nk) distance evaluations.
func Greedy(n int, dist DistFunc, k int) (Result, error) {
	if n <= 0 {
		return Result{}, fmt.Errorf("cluster: n must be positive, got %d", n)
	}
	if k <= 0 {
		return Result{}, fmt.Errorf("cluster: k must be positive, got %d", k)
	}
	if k > n {
		k = n
	}
	centers := make([]int, 0, k)
	minDist := make([]float64, n) // distance to nearest chosen center
	assign := make([]int, n)
	for i := range minDist {
		minDist[i] = math.Inf(1)
	}

	next := 0 // deterministic first center
	for len(centers) < k {
		c := next
		ci := len(centers)
		centers = append(centers, c)
		// Relax all items against the new center and find the next
		// farthest item in the same pass.
		far, farD := -1, -1.0
		for i := 0; i < n; i++ {
			if d := dist(c, i); d < minDist[i] {
				minDist[i] = d
				assign[i] = ci
			}
			if minDist[i] > farD {
				farD = minDist[i]
				far = i
			}
		}
		next = far
		if farD == 0 {
			break // all items coincide with chosen centers
		}
	}
	radius := 0.0
	for _, d := range minDist {
		if d > radius {
			radius = d
		}
	}
	return Result{
		K:       len(centers),
		Assign:  assign,
		Centers: centers,
		Radius:  radius,
	}, nil
}

// SearchTrace records one binary-search probe of GreedySearch: the k that
// was tried and the k-center radius δ_k the greedy subroutine achieved.
// The paper's algorithm "returns log₂ n tuples of the form (k', δ_k')".
type SearchTrace struct {
	K      int
	Radius float64
}

// GreedySearch is the paper's bicriteria algorithm for
// CLUSTERMINIMIZATION. Given the inter-landmark threshold δ (delta), it
// binary-searches k ∈ [1, n], calling Greedy each time: if the greedy
// radius exceeds 2δ the lower half is discarded, otherwise the upper
// half. The smallest probed k whose radius is ≤ 2δ becomes k_ALG.
//
// Theorem 6: k_ALG ≤ k_OPT and every pair of items sharing a cluster is
// within 4δ (triangle inequality through the shared center at ≤ 2δ).
//
// The returned trace contains every probe, mirroring the paper's output.
func GreedySearch(n int, dist DistFunc, delta float64) (Result, []SearchTrace, error) {
	if n <= 0 {
		return Result{}, nil, fmt.Errorf("cluster: n must be positive, got %d", n)
	}
	if delta < 0 || math.IsNaN(delta) {
		return Result{}, nil, fmt.Errorf("cluster: delta must be >= 0, got %v", delta)
	}

	var trace []SearchTrace
	lo, hi := 1, n
	best := Result{}
	found := false
	for lo <= hi {
		k := (lo + hi) / 2
		res, err := Greedy(n, dist, k)
		if err != nil {
			return Result{}, nil, err
		}
		trace = append(trace, SearchTrace{K: k, Radius: res.Radius})
		if res.Radius <= 2*delta {
			// Feasible: remember the smallest feasible k seen.
			if !found || res.K < best.K {
				best = res
				found = true
			}
			hi = k - 1
		} else {
			lo = k + 1
		}
	}
	if !found {
		// Even k = n can fail only if the greedy stopped early with
		// coincident points; k = n always yields radius 0, so probe it.
		res, err := Greedy(n, dist, n)
		if err != nil {
			return Result{}, nil, err
		}
		trace = append(trace, SearchTrace{K: n, Radius: res.Radius})
		if res.Radius > 2*delta {
			return Result{}, trace, fmt.Errorf("cluster: no feasible clustering found (radius %v > 2δ=%v at k=n)", res.Radius, 2*delta)
		}
		best = res
	}
	return best, trace, nil
}
