package workload

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestCSVRoundTrip(t *testing.T) {
	city := testCity(t)
	trips, err := Generate(city, DefaultConfig(200, 3))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, trips); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(trips) {
		t.Fatalf("round trip lost trips: %d vs %d", len(back), len(trips))
	}
	for i := range trips {
		if back[i].ID != trips[i].ID {
			t.Fatalf("trip %d: ID %d vs %d", i, back[i].ID, trips[i].ID)
		}
		if math.Abs(back[i].RequestTime-trips[i].RequestTime) > 1e-3 {
			t.Fatalf("trip %d: time %v vs %v", i, back[i].RequestTime, trips[i].RequestTime)
		}
		if math.Abs(back[i].Pickup.Lat-trips[i].Pickup.Lat) > 1e-6 ||
			math.Abs(back[i].Dropoff.Lng-trips[i].Dropoff.Lng) > 1e-6 {
			t.Fatalf("trip %d: coordinates drifted", i)
		}
	}
}

func TestReadCSVEmptyStream(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSV(&buf, nil); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 0 {
		t.Fatal("empty stream must round-trip empty")
	}
}

func TestReadCSVRejectsBadInput(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"empty", ""},
		{"wrong header", "a,b,c,d,e,f\n"},
		{"bad id", "trip_id,request_time_s,pickup_lat,pickup_lng,dropoff_lat,dropoff_lng\nx,1,2,3,4,5\n"},
		{"bad float", "trip_id,request_time_s,pickup_lat,pickup_lng,dropoff_lat,dropoff_lng\n1,zz,2,3,4,5\n"},
		{"negative time", "trip_id,request_time_s,pickup_lat,pickup_lng,dropoff_lat,dropoff_lng\n1,-5,2,3,4,5\n"},
		{"bad latitude", "trip_id,request_time_s,pickup_lat,pickup_lng,dropoff_lat,dropoff_lng\n1,5,999,3,4,5\n"},
		{"short row", "trip_id,request_time_s,pickup_lat,pickup_lng,dropoff_lat,dropoff_lng\n1,5,2\n"},
	}
	for _, tc := range cases {
		if _, err := ReadCSV(strings.NewReader(tc.in)); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}
