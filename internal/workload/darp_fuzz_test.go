package workload

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadDARP checks the instance parser never panics and that every
// instance it accepts survives a write/read round trip with its trip
// stream intact.
func FuzzReadDARP(f *testing.F) {
	f.Add(sampleDARP)
	f.Add("1 1 480 3 30\n0 0 0 0 0 0 480\n1 -1 2 3 1 60 75\n2 3 -4 3 -1 0 480\n3 0 0 0 0 0 480\n")
	f.Add("1 1 480 3 30\n1 -1 2 3 1 60 75\n2 3 -4 3 -1 0 480\n")
	f.Add("# comment\n\n2 3 480 3 30\n")
	f.Add("")
	f.Add("2 3 480\n")
	f.Add("1 1 480 3 30\n1 0 0 3 1 50 10\n")
	f.Fuzz(func(t *testing.T, s string) {
		inst, err := ReadDARP(strings.NewReader(s))
		if err != nil {
			return
		}
		if len(inst.Trips) != inst.Requests {
			t.Fatalf("accepted instance with %d trips for n=%d", len(inst.Trips), inst.Requests)
		}
		var buf bytes.Buffer
		if err := WriteDARP(&buf, inst); err != nil {
			t.Fatalf("accepted instance failed to write: %v", err)
		}
		back, err := ReadDARP(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if len(back.Trips) != len(inst.Trips) {
			t.Fatalf("round trip lost trips: %d vs %d", len(back.Trips), len(inst.Trips))
		}
		for i := range inst.Trips {
			if back.Trips[i].ID != inst.Trips[i].ID {
				t.Fatalf("trip %d order changed", i)
			}
		}
	})
}
