package workload

import (
	"bytes"
	"strings"
	"testing"

	"xar/internal/geo"
)

// sampleDARP is a 3-request instance in Cordeau layout: depot, pickups
// 1..3, dropoffs 4..6, terminal depot. Requests 1 and 3 are outbound
// (tight pickup window), request 2 inbound (tight dropoff window).
const sampleDARP = `2 3 480 3 30
0 0.0 0.0 0 0 0 480
1 -1.5 2.0 3 1 60 75
2 4.0 -2.5 3 1 0 480
3 1.0 1.0 3 1 200 215
4 3.5 3.5 3 -1 0 480
5 -4.0 0.5 3 -1 120 135
6 2.0 -3.0 3 -1 0 480
7 0.0 0.0 0 0 0 480
`

func TestReadDARP(t *testing.T) {
	inst, err := ReadDARP(strings.NewReader(sampleDARP))
	if err != nil {
		t.Fatal(err)
	}
	if inst.Vehicles != 2 || inst.Requests != 3 || inst.Capacity != 3 {
		t.Fatalf("header: %+v", inst)
	}
	if inst.MaxRouteMin != 480 || inst.MaxRideMin != 30 {
		t.Fatalf("bounds: %+v", inst)
	}
	if len(inst.Trips) != 3 {
		t.Fatalf("%d trips, want 3", len(inst.Trips))
	}
	// Instance order and IDs preserved.
	for i, tr := range inst.Trips {
		if tr.ID != i+1 {
			t.Fatalf("trip %d has ID %d", i, tr.ID)
		}
	}
	// Request 1: outbound, time = pickup early (60 min).
	if got := inst.Trips[0].RequestTime; got != 60*60 {
		t.Fatalf("trip 1 request time %v, want 3600", got)
	}
	// Request 2: inbound, time = dropoff early (120 min).
	if got := inst.Trips[1].RequestTime; got != 120*60 {
		t.Fatalf("trip 2 request time %v, want 7200", got)
	}
	// Coordinates: Lat=y, Lng=x.
	if p := inst.Trips[0].Pickup; p.Lng != -1.5 || p.Lat != 2.0 {
		t.Fatalf("trip 1 pickup %+v", p)
	}
	if d := inst.Trips[2].Dropoff; d.Lng != 2.0 || d.Lat != -3.0 {
		t.Fatalf("trip 3 dropoff %+v", d)
	}
}

func TestReadDARPRejects(t *testing.T) {
	for name, in := range map[string]string{
		"empty":          "",
		"short header":   "2 3 480\n",
		"zero requests":  "2 0 480 3 30\n",
		"missing pickup": "1 1 480 3 30\n0 0 0 0 0 0 480\n2 1 1 3 -1 0 480\n",
		"short row":      "1 1 480 3 30\n0 0 0 0 0\n",
		"bad id":         "1 1 480 3 30\nx 0 0 0 0 0 480\n",
		"id range":       "1 1 480 3 30\n9 0 0 0 0 0 480\n",
		"dup id":         "1 1 480 3 30\n1 0 0 3 1 0 10\n1 1 1 3 1 0 10\n",
		"inverted tw":    "1 1 480 3 30\n1 0 0 3 1 50 10\n2 1 1 3 -1 0 480\n",
	} {
		if _, err := ReadDARP(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestDARPRoundTrip pins the loader's replay contract: write → read
// preserves request count, ordering, coordinates, and request times, so
// an instance-driven load run is reproducible from its exported form.
func TestDARPRoundTrip(t *testing.T) {
	inst, err := ReadDARP(strings.NewReader(sampleDARP))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteDARP(&buf, inst); err != nil {
		t.Fatal(err)
	}
	back, err := ReadDARP(&buf)
	if err != nil {
		t.Fatalf("re-read: %v\n%s", err, buf.String())
	}
	if len(back.Trips) != len(inst.Trips) {
		t.Fatalf("round trip: %d trips, want %d", len(back.Trips), len(inst.Trips))
	}
	for i := range inst.Trips {
		a, b := inst.Trips[i], back.Trips[i]
		if a.ID != b.ID || a.Pickup != b.Pickup || a.Dropoff != b.Dropoff || a.RequestTime != b.RequestTime {
			t.Fatalf("trip %d changed: %+v vs %+v", i, a, b)
		}
	}
	if back.Vehicles != inst.Vehicles || back.Capacity != inst.Capacity {
		t.Fatalf("header changed: %+v vs %+v", back, inst)
	}
}

func TestMapToBBox(t *testing.T) {
	inst, err := ReadDARP(strings.NewReader(sampleDARP))
	if err != nil {
		t.Fatal(err)
	}
	box := geo.BBox{MinLat: 40.70, MinLng: -74.02, MaxLat: 40.80, MaxLng: -73.93}
	trips := inst.MapToBBox(box)
	if len(trips) != len(inst.Trips) {
		t.Fatalf("%d trips", len(trips))
	}
	for i, tr := range trips {
		for _, p := range []geo.Point{tr.Pickup, tr.Dropoff} {
			if !box.Contains(p) {
				t.Fatalf("trip %d endpoint %+v outside box", i, p)
			}
		}
		if tr.RequestTime != inst.Trips[i].RequestTime || tr.ID != inst.Trips[i].ID {
			t.Fatalf("trip %d identity changed", i)
		}
	}
	// The extreme x (4.0, request 2 pickup) must land on the box's max
	// lng edge, the extreme y (3.5, request 1 dropoff) on the max lat.
	if got := trips[1].Pickup.Lng; got != box.MaxLng {
		t.Fatalf("max-x pickup mapped to lng %v, want %v", got, box.MaxLng)
	}
	if got := trips[0].Dropoff.Lat; got != box.MaxLat {
		t.Fatalf("max-y dropoff mapped to lat %v, want %v", got, box.MaxLat)
	}
}
