package workload

import (
	"math"
	"testing"

	"xar/internal/geo"
	"xar/internal/roadnet"
)

func testCity(t testing.TB) *roadnet.City {
	t.Helper()
	city, err := roadnet.GenerateCity(roadnet.DefaultCityConfig(30, 16, 42))
	if err != nil {
		t.Fatal(err)
	}
	return city
}

func TestGenerateValidation(t *testing.T) {
	city := testCity(t)
	bad := DefaultConfig(0, 1)
	if _, err := Generate(city, bad); err == nil {
		t.Fatal("zero trips must be rejected")
	}
	bad = DefaultConfig(10, 1)
	bad.MinTripDist = 5000
	bad.MaxTripDist = 1000
	if _, err := Generate(city, bad); err == nil {
		t.Fatal("inverted distance bounds must be rejected")
	}
	bad = DefaultConfig(10, 1)
	bad.UniformFrac = 1.5
	if _, err := Generate(city, bad); err == nil {
		t.Fatal("UniformFrac > 1 must be rejected")
	}
	bad = DefaultConfig(10, 1)
	bad.StartHour = 10
	bad.EndHour = 9
	if _, err := Generate(city, bad); err == nil {
		t.Fatal("inverted hour window must be rejected")
	}
	bad = DefaultConfig(10, 1)
	bad.MinTripDist = 1e7
	bad.MaxTripDist = 2e7
	if _, err := Generate(city, bad); err == nil {
		t.Fatal("min distance beyond the city must be rejected")
	}
}

func TestGenerateBasicProperties(t *testing.T) {
	city := testCity(t)
	cfg := DefaultConfig(2000, 7)
	trips, err := Generate(city, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(trips) != 2000 {
		t.Fatalf("generated %d trips", len(trips))
	}
	box := city.Graph.BBox()
	for i, tr := range trips {
		d := geo.Haversine(tr.Pickup, tr.Dropoff)
		if d < cfg.MinTripDist || d > cfg.MaxTripDist {
			t.Fatalf("trip %d distance %.0f outside [%v, %v]", i, d, cfg.MinTripDist, cfg.MaxTripDist)
		}
		if !box.Contains(tr.Pickup) || !box.Contains(tr.Dropoff) {
			t.Fatalf("trip %d endpoint outside the city", i)
		}
		if tr.RequestTime < 0 || tr.RequestTime >= 24*3600 {
			t.Fatalf("trip %d time %v outside the day", i, tr.RequestTime)
		}
		if i > 0 && tr.RequestTime < trips[i-1].RequestTime {
			t.Fatal("trips not sorted by time")
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	city := testCity(t)
	a, err := Generate(city, DefaultConfig(500, 9))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(city, DefaultConfig(500, 9))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trip %d differs across identical seeds", i)
		}
	}
	c, err := Generate(city, DefaultConfig(500, 10))
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := range a {
		if a[i].Pickup == c[i].Pickup {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestHourlyProfileShapesDemand(t *testing.T) {
	city := testCity(t)
	trips, err := Generate(city, DefaultConfig(20000, 3))
	if err != nil {
		t.Fatal(err)
	}
	var perHour [24]int
	for _, tr := range trips {
		perHour[int(tr.RequestTime/3600)%24]++
	}
	// Peak hours (18–19) must comfortably exceed the dead of night (3–4).
	if perHour[18] < 3*perHour[3] {
		t.Fatalf("18h=%d vs 3h=%d; time-of-day profile not applied", perHour[18], perHour[3])
	}
}

func TestHourWindowRestriction(t *testing.T) {
	city := testCity(t)
	cfg := DefaultConfig(1000, 4)
	cfg.StartHour = 6
	cfg.EndHour = 12
	trips, err := Generate(city, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range trips {
		h := tr.RequestTime / 3600
		if h < 6 || h >= 13 {
			t.Fatalf("trip at hour %.2f outside [6, 12]", h)
		}
	}
}

func TestHotspotConcentration(t *testing.T) {
	city := testCity(t)
	hot := DefaultHotspots(city)
	cfgHot := DefaultConfig(3000, 5)
	cfgHot.UniformFrac = 0
	cfgFlat := DefaultConfig(3000, 5)
	cfgFlat.UniformFrac = 1

	hotTrips, err := Generate(city, cfgHot)
	if err != nil {
		t.Fatal(err)
	}
	flatTrips, err := Generate(city, cfgFlat)
	if err != nil {
		t.Fatal(err)
	}
	meanDistToHotspot := func(trips []Trip) float64 {
		var s float64
		for _, tr := range trips {
			best := math.Inf(1)
			for _, h := range hot {
				if d := geo.Haversine(tr.Pickup, h.Center); d < best {
					best = d
				}
			}
			s += best
		}
		return s / float64(len(trips))
	}
	if meanDistToHotspot(hotTrips) >= meanDistToHotspot(flatTrips) {
		t.Fatal("hotspot demand not more concentrated than uniform demand")
	}
}

func TestSummarize(t *testing.T) {
	city := testCity(t)
	trips, err := Generate(city, DefaultConfig(5000, 6))
	if err != nil {
		t.Fatal(err)
	}
	st := Summarize(trips)
	if st.N != 5000 {
		t.Fatalf("N = %d", st.N)
	}
	if st.MedianDist < 800 || st.MedianDist > 12000 {
		t.Fatalf("median distance %.0f outside bounds", st.MedianDist)
	}
	if st.MeanDist <= 0 {
		t.Fatal("non-positive mean distance")
	}
	if st.PeakHourFrac <= 0 || st.PeakHourFrac > 1 {
		t.Fatalf("peak fraction %v", st.PeakHourFrac)
	}
	if empty := Summarize(nil); empty.N != 0 {
		t.Fatal("empty summary")
	}
}
