package workload

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadCSV checks the trip parser never panics and that everything it
// accepts survives a write/read round trip.
func FuzzReadCSV(f *testing.F) {
	f.Add("trip_id,request_time_s,pickup_lat,pickup_lng,dropoff_lat,dropoff_lng\n1,5,40.7,-74,40.8,-73.9\n")
	f.Add("trip_id,request_time_s,pickup_lat,pickup_lng,dropoff_lat,dropoff_lng\n")
	f.Add("")
	f.Add("a,b\n1,2\n")
	f.Fuzz(func(t *testing.T, s string) {
		trips, err := ReadCSV(strings.NewReader(s))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteCSV(&buf, trips); err != nil {
			t.Fatalf("accepted trips failed to write: %v", err)
		}
		back, err := ReadCSV(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if len(back) != len(trips) {
			t.Fatalf("round trip lost trips: %d vs %d", len(back), len(trips))
		}
	})
}
