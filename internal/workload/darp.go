package workload

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"xar/internal/geo"
)

// This file loads Cordeau–Laporte DARP benchmark instances (the a/b
// series used throughout the dial-a-ride literature) as trip streams, so
// the load harness and replays can run on the standard academic
// instances next to the synthetic NYC-shaped generator.
//
// Instance layout:
//
//	|K| n maxRouteDuration Q maxRideTime
//	id x y serviceDur loadChange twEarly twLate     (depot, id 0)
//	... 2n request rows: pickups id 1..n, dropoffs id n+1..2n
//	[optional terminal depot row, id 2n+1]
//
// Coordinates are planar (typically [-10,10] "Cordeau units"); times are
// minutes. Request i becomes one Trip: pickup row i's coordinates and
// dropoff row n+i's, with the request time taken from whichever side
// carries the tight time window (outbound requests constrain the
// pickup, inbound ones the dropoff — the other side spans the whole
// horizon).

// DARPInstance is a parsed instance: the header and the trips it
// induces. Trips preserve instance order (request 1 first) and carry
// IDs 1..n matching the instance's pickup node IDs.
type DARPInstance struct {
	Vehicles    int     // |K|
	Requests    int     // n
	MaxRouteMin float64 // route-duration bound, minutes
	Capacity    int     // Q
	MaxRideMin  float64 // per-passenger ride-time bound, minutes
	Trips       []Trip
}

// darpNode is one parsed instance row.
type darpNode struct {
	x, y        float64
	early, late float64
}

// ReadDARP parses a Cordeau-format instance. Planar coordinates pass
// through as Lat=y, Lng=x (see MapToBBox for projecting them into a
// city's geographic frame); time windows convert minutes → seconds to
// match Trip.RequestTime.
func ReadDARP(r io.Reader) (*DARPInstance, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)

	fields, err := nextDARPRow(sc)
	if err != nil {
		return nil, fmt.Errorf("workload: darp header: %w", err)
	}
	if len(fields) < 5 {
		return nil, fmt.Errorf("workload: darp header has %d fields, want 5", len(fields))
	}
	inst := &DARPInstance{}
	hdr := make([]float64, 5)
	for i := 0; i < 5; i++ {
		hdr[i], err = strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return nil, fmt.Errorf("workload: darp header field %d: %w", i, err)
		}
	}
	inst.Vehicles = int(hdr[0])
	inst.Requests = int(hdr[1])
	inst.MaxRouteMin = hdr[2]
	inst.Capacity = int(hdr[3])
	inst.MaxRideMin = hdr[4]
	n := inst.Requests
	if inst.Vehicles <= 0 || n <= 0 || inst.Capacity <= 0 {
		return nil, fmt.Errorf("workload: darp header %v not positive", fields[:5])
	}
	if n > 1<<20 {
		return nil, fmt.Errorf("workload: darp instance claims %d requests", n)
	}

	// Depot + 2n request rows; a trailing depot row is optional.
	nodes := make(map[int]darpNode, 2*n+2)
	for {
		fields, err := nextDARPRow(sc)
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if len(fields) < 7 {
			return nil, fmt.Errorf("workload: darp row %q has %d fields, want 7", strings.Join(fields, " "), len(fields))
		}
		id, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("workload: darp node id %q: %w", fields[0], err)
		}
		if id < 0 || id > 2*n+1 {
			return nil, fmt.Errorf("workload: darp node id %d out of range [0, %d]", id, 2*n+1)
		}
		if _, dup := nodes[id]; dup {
			return nil, fmt.Errorf("workload: duplicate darp node id %d", id)
		}
		var v [7]float64
		for i := 1; i < 7; i++ {
			v[i], err = strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("workload: darp node %d field %d: %w", id, i, err)
			}
		}
		if v[6] < v[5] {
			return nil, fmt.Errorf("workload: darp node %d window [%v, %v] inverted", id, v[5], v[6])
		}
		nodes[id] = darpNode{x: v[1], y: v[2], early: v[5], late: v[6]}
	}

	inst.Trips = make([]Trip, 0, n)
	for i := 1; i <= n; i++ {
		pu, ok := nodes[i]
		if !ok {
			return nil, fmt.Errorf("workload: darp pickup node %d missing", i)
		}
		do, ok := nodes[n+i]
		if !ok {
			return nil, fmt.Errorf("workload: darp dropoff node %d missing", n+i)
		}
		// The constrained side carries the narrower window; its early
		// edge (minutes) is the request time.
		reqMin := pu.early
		if do.late-do.early < pu.late-pu.early {
			reqMin = do.early
		}
		if reqMin < 0 {
			reqMin = 0
		}
		inst.Trips = append(inst.Trips, Trip{
			ID:          i,
			Pickup:      geo.Point{Lat: pu.y, Lng: pu.x},
			Dropoff:     geo.Point{Lat: do.y, Lng: do.x},
			RequestTime: reqMin * 60,
		})
	}
	return inst, nil
}

// nextDARPRow returns the next non-empty, non-comment whitespace-split
// line, or io.EOF.
func nextDARPRow(sc *bufio.Scanner) ([]string, error) {
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		return strings.Fields(line), nil
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("workload: darp scan: %w", err)
	}
	return nil, io.EOF
}

// WriteDARP renders the instance back in Cordeau format (depot at the
// coordinate centroid, windows reconstructed from the trips). ReadDARP ∘
// WriteDARP preserves request count, order, coordinates, and request
// times — the round-trip property the tests pin down.
func WriteDARP(w io.Writer, inst *DARPInstance) error {
	n := len(inst.Trips)
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%d %d %g %d %g\n",
		inst.Vehicles, n, inst.MaxRouteMin, inst.Capacity, inst.MaxRideMin); err != nil {
		return err
	}
	var cx, cy float64
	for _, t := range inst.Trips {
		cx += t.Pickup.Lng + t.Dropoff.Lng
		cy += t.Pickup.Lat + t.Dropoff.Lat
	}
	if n > 0 {
		cx /= float64(2 * n)
		cy /= float64(2 * n)
	}
	horizon := inst.MaxRouteMin
	for _, t := range inst.Trips {
		if m := t.RequestTime / 60; m > horizon {
			horizon = m
		}
	}
	row := func(id int, x, y, early, late float64) error {
		_, err := fmt.Fprintf(bw, "%d %g %g 0 %d %g %g\n", id, x, y, loadOf(id, n), early, late)
		return err
	}
	if err := row(0, cx, cy, 0, horizon); err != nil {
		return err
	}
	for i, t := range inst.Trips {
		// Emit the window on the pickup side; ReadDARP's narrower-window
		// rule then recovers RequestTime from it.
		if err := row(i+1, t.Pickup.Lng, t.Pickup.Lat, t.RequestTime/60, t.RequestTime/60); err != nil {
			return err
		}
	}
	for i, t := range inst.Trips {
		if err := row(n+i+1, t.Dropoff.Lng, t.Dropoff.Lat, 0, horizon); err != nil {
			return err
		}
	}
	if err := row(2*n+1, cx, cy, 0, horizon); err != nil {
		return err
	}
	return bw.Flush()
}

// loadOf is the conventional load-change column: +1 at pickups, -1 at
// dropoffs, 0 at depots.
func loadOf(id, n int) int {
	switch {
	case id >= 1 && id <= n:
		return 1
	case id > n && id <= 2*n:
		return -1
	default:
		return 0
	}
}

// MapToBBox affinely maps the instance's planar coordinates into box, so
// Cordeau-unit instances can drive a generated city: the instance's
// bounding square maps onto the city's bounding box, preserving request
// order and times. Degenerate axes collapse to the box center.
func (inst *DARPInstance) MapToBBox(box geo.BBox) []Trip {
	if len(inst.Trips) == 0 {
		return nil
	}
	minX, maxX := inst.Trips[0].Pickup.Lng, inst.Trips[0].Pickup.Lng
	minY, maxY := inst.Trips[0].Pickup.Lat, inst.Trips[0].Pickup.Lat
	grow := func(p geo.Point) {
		minX, maxX = min(minX, p.Lng), max(maxX, p.Lng)
		minY, maxY = min(minY, p.Lat), max(maxY, p.Lat)
	}
	for _, t := range inst.Trips {
		grow(t.Pickup)
		grow(t.Dropoff)
	}
	proj := func(p geo.Point) geo.Point {
		fx, fy := 0.5, 0.5
		if maxX > minX {
			fx = (p.Lng - minX) / (maxX - minX)
		}
		if maxY > minY {
			fy = (p.Lat - minY) / (maxY - minY)
		}
		return geo.Point{
			Lat: box.MinLat + fy*(box.MaxLat-box.MinLat),
			Lng: box.MinLng + fx*(box.MaxLng-box.MinLng),
		}
	}
	out := make([]Trip, len(inst.Trips))
	for i, t := range inst.Trips {
		out[i] = Trip{
			ID:          t.ID,
			Pickup:      proj(t.Pickup),
			Dropoff:     proj(t.Dropoff),
			RequestTime: t.RequestTime,
		}
	}
	return out
}
