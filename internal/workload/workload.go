// Package workload generates the ride-request streams the experiments
// run on. The paper replays 350,000 NYC taxi trips from 2013-03-07; that
// dataset is not redistributable, so this generator synthesizes a demand
// stream with the same spatio-temporal shape: an AM/PM-peaked time-of-day
// profile, hotspot-concentrated origins and destinations (midtown-heavy),
// and trip lengths matching Manhattan taxi statistics (median ≈ 2–3 km).
// Generation is deterministic per seed.
package workload

import (
	"fmt"
	"math/rand"
	"sort"

	"xar/internal/geo"
	"xar/internal/roadnet"
)

// Trip is one taxi trip / ride request: a pickup location, a drop-off
// location and a request time (seconds of day).
type Trip struct {
	ID          int
	Pickup      geo.Point
	Dropoff     geo.Point
	RequestTime float64
}

// Hotspot is a demand center: trips originate/terminate near hotspots
// with probability proportional to Weight, scattered with a Gaussian of
// the given sigma (meters).
type Hotspot struct {
	Center geo.Point
	Weight float64
	Sigma  float64
}

// Config parameterizes generation.
type Config struct {
	// NumTrips is the stream length.
	NumTrips int
	// Seed makes the stream deterministic.
	Seed int64
	// Hotspots concentrate demand; nil derives a default midtown-heavy
	// set from the city's bounding box.
	Hotspots []Hotspot
	// UniformFrac is the fraction of trip endpoints drawn uniformly from
	// the city instead of from hotspots (background demand).
	UniformFrac float64
	// HourlyWeights is the relative request intensity per hour of day;
	// zero value uses an NYC-taxi-shaped profile.
	HourlyWeights [24]float64
	// MinTripDist / MaxTripDist bound straight-line trip lengths in
	// meters (rejection sampling).
	MinTripDist, MaxTripDist float64
	// StartHour / EndHour bound request times (hours of day).
	StartHour, EndHour float64
}

// DefaultConfig returns an NYC-shaped configuration for n trips.
func DefaultConfig(n int, seed int64) Config {
	return Config{
		NumTrips:    n,
		Seed:        seed,
		UniformFrac: 0.3,
		MinTripDist: 800,
		MaxTripDist: 12000,
		StartHour:   0,
		EndHour:     24,
	}
}

// nycHourlyProfile approximates NYC taxi pickup counts by hour: a morning
// ramp, lunchtime plateau, evening peak, late-night tail.
var nycHourlyProfile = [24]float64{
	1.2, 0.8, 0.6, 0.4, 0.3, 0.5, // 00–05
	1.2, 2.2, 3.0, 2.8, 2.4, 2.4, // 06–11
	2.6, 2.5, 2.6, 2.4, 2.2, 2.8, // 12–17
	3.4, 3.6, 3.2, 2.8, 2.4, 1.8, // 18–23
}

// Generate produces a time-sorted trip stream over the city. It fails on
// degenerate configurations rather than looping forever in rejection
// sampling.
func Generate(city *roadnet.City, cfg Config) ([]Trip, error) {
	if cfg.NumTrips <= 0 {
		return nil, fmt.Errorf("workload: NumTrips must be positive, got %d", cfg.NumTrips)
	}
	if cfg.MinTripDist < 0 || cfg.MaxTripDist <= cfg.MinTripDist {
		return nil, fmt.Errorf("workload: invalid trip distance bounds [%v, %v]", cfg.MinTripDist, cfg.MaxTripDist)
	}
	if cfg.UniformFrac < 0 || cfg.UniformFrac > 1 {
		return nil, fmt.Errorf("workload: UniformFrac %v out of [0,1]", cfg.UniformFrac)
	}
	if cfg.EndHour <= cfg.StartHour || cfg.StartHour < 0 || cfg.EndHour > 24 {
		return nil, fmt.Errorf("workload: invalid hour window [%v, %v]", cfg.StartHour, cfg.EndHour)
	}
	box := city.Graph.BBox()
	diag := geo.Haversine(
		geo.Point{Lat: box.MinLat, Lng: box.MinLng},
		geo.Point{Lat: box.MaxLat, Lng: box.MaxLng},
	)
	if cfg.MinTripDist >= diag {
		return nil, fmt.Errorf("workload: MinTripDist %v exceeds city diagonal %v", cfg.MinTripDist, diag)
	}

	hotspots := cfg.Hotspots
	if hotspots == nil {
		hotspots = DefaultHotspots(city)
	}
	weights := cfg.HourlyWeights
	zero := true
	for _, w := range weights {
		if w != 0 {
			zero = false
			break
		}
	}
	if zero {
		weights = nycHourlyProfile
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	sampler := newHourSampler(weights, cfg.StartHour, cfg.EndHour)
	totalW := 0.0
	for _, h := range hotspots {
		totalW += h.Weight
	}

	samplePoint := func() geo.Point {
		if totalW == 0 || rng.Float64() < cfg.UniformFrac {
			return randomInBox(rng, box)
		}
		x := rng.Float64() * totalW
		for _, h := range hotspots {
			if x -= h.Weight; x <= 0 {
				return gaussianAround(rng, h.Center, h.Sigma, box)
			}
		}
		return randomInBox(rng, box)
	}

	trips := make([]Trip, 0, cfg.NumTrips)
	for i := 0; i < cfg.NumTrips; i++ {
		var pu, do geo.Point
		ok := false
		for attempt := 0; attempt < 200; attempt++ {
			pu = samplePoint()
			do = samplePoint()
			d := geo.Haversine(pu, do)
			if d >= cfg.MinTripDist && d <= cfg.MaxTripDist {
				ok = true
				break
			}
		}
		if !ok {
			return nil, fmt.Errorf("workload: rejection sampling failed for trip %d; distance bounds incompatible with the city", i)
		}
		trips = append(trips, Trip{
			ID:          i,
			Pickup:      pu,
			Dropoff:     do,
			RequestTime: sampler.sample(rng),
		})
	}
	sort.Slice(trips, func(i, j int) bool {
		if trips[i].RequestTime != trips[j].RequestTime {
			return trips[i].RequestTime < trips[j].RequestTime
		}
		return trips[i].ID < trips[j].ID
	})
	return trips, nil
}

// DefaultHotspots derives a midtown-heavy hotspot set from the city's
// extents: a dominant center (midtown), a strong south pole (downtown /
// financial district), and a weaker north pole (uptown).
func DefaultHotspots(city *roadnet.City) []Hotspot {
	box := city.Graph.BBox()
	at := func(fracN, fracE float64) geo.Point {
		return geo.Point{
			Lat: box.MinLat + fracN*(box.MaxLat-box.MinLat),
			Lng: box.MinLng + fracE*(box.MaxLng-box.MinLng),
		}
	}
	scale := box.HeightMeters()
	return []Hotspot{
		{Center: at(0.60, 0.50), Weight: 3.0, Sigma: scale * 0.10}, // midtown
		{Center: at(0.15, 0.45), Weight: 2.0, Sigma: scale * 0.08}, // downtown
		{Center: at(0.85, 0.55), Weight: 1.0, Sigma: scale * 0.10}, // uptown
	}
}

func randomInBox(rng *rand.Rand, box geo.BBox) geo.Point {
	return geo.Point{
		Lat: box.MinLat + rng.Float64()*(box.MaxLat-box.MinLat),
		Lng: box.MinLng + rng.Float64()*(box.MaxLng-box.MinLng),
	}
}

func gaussianAround(rng *rand.Rand, center geo.Point, sigma float64, box geo.BBox) geo.Point {
	for attempt := 0; attempt < 20; attempt++ {
		north := rng.NormFloat64() * sigma
		east := rng.NormFloat64() * sigma
		p := geo.Destination(geo.Destination(center, 0, north), 90, east)
		if box.Contains(p) {
			return p
		}
	}
	return center
}

// hourSampler draws request times from a piecewise-constant hourly
// intensity restricted to [startHour, endHour).
type hourSampler struct {
	cum       []float64 // cumulative weight per included hour
	hours     []int
	startHour float64
}

func newHourSampler(weights [24]float64, startHour, endHour float64) *hourSampler {
	s := &hourSampler{startHour: startHour}
	total := 0.0
	for h := int(startHour); h < int(endHour+0.999) && h < 24; h++ {
		w := weights[h]
		if w <= 0 {
			w = 1e-9
		}
		total += w
		s.cum = append(s.cum, total)
		s.hours = append(s.hours, h)
	}
	return s
}

func (s *hourSampler) sample(rng *rand.Rand) float64 {
	total := s.cum[len(s.cum)-1]
	x := rng.Float64() * total
	i := sort.SearchFloat64s(s.cum, x)
	if i >= len(s.hours) {
		i = len(s.hours) - 1
	}
	return float64(s.hours[i])*3600 + rng.Float64()*3600
}

// Stats summarizes a trip stream for logging and sanity tests.
type Stats struct {
	N            int
	MeanDist     float64
	MedianDist   float64
	PeakHour     int
	PeakHourFrac float64
}

// Summarize computes stream statistics.
func Summarize(trips []Trip) Stats {
	if len(trips) == 0 {
		return Stats{}
	}
	dists := make([]float64, len(trips))
	var sum float64
	var perHour [24]int
	for i, t := range trips {
		dists[i] = geo.Haversine(t.Pickup, t.Dropoff)
		sum += dists[i]
		h := int(t.RequestTime/3600) % 24
		perHour[h]++
	}
	sort.Float64s(dists)
	peak, peakN := 0, 0
	for h, n := range perHour {
		if n > peakN {
			peak, peakN = h, n
		}
	}
	return Stats{
		N:            len(trips),
		MeanDist:     sum / float64(len(trips)),
		MedianDist:   dists[len(dists)/2],
		PeakHour:     peak,
		PeakHourFrac: float64(peakN) / float64(len(trips)),
	}
}
