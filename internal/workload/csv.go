package workload

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"xar/internal/geo"
)

// csvHeader is the column layout of the trip interchange format — the
// same fields the NYC taxi dataset provides (pickup time, pickup
// location, drop-off location).
var csvHeader = []string{
	"trip_id", "request_time_s",
	"pickup_lat", "pickup_lng",
	"dropoff_lat", "dropoff_lng",
}

// WriteCSV writes a trip stream in the interchange format, so generated
// workloads can be inspected, version-pinned and replayed byte-for-byte.
func WriteCSV(w io.Writer, trips []Trip) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	rec := make([]string, len(csvHeader))
	for _, t := range trips {
		rec[0] = strconv.Itoa(t.ID)
		rec[1] = strconv.FormatFloat(t.RequestTime, 'f', 3, 64)
		rec[2] = strconv.FormatFloat(t.Pickup.Lat, 'f', 7, 64)
		rec[3] = strconv.FormatFloat(t.Pickup.Lng, 'f', 7, 64)
		rec[4] = strconv.FormatFloat(t.Dropoff.Lat, 'f', 7, 64)
		rec[5] = strconv.FormatFloat(t.Dropoff.Lng, 'f', 7, 64)
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a trip stream written by WriteCSV (or hand-prepared in
// the same format, e.g. converted from the real NYC dataset). It
// validates coordinates and times and requires the exact header.
func ReadCSV(r io.Reader) ([]Trip, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(csvHeader)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("workload: read header: %w", err)
	}
	for i, h := range csvHeader {
		if header[i] != h {
			return nil, fmt.Errorf("workload: column %d is %q, want %q", i, header[i], h)
		}
	}
	var trips []Trip
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("workload: line %d: %w", line, err)
		}
		t, err := parseTrip(rec)
		if err != nil {
			return nil, fmt.Errorf("workload: line %d: %w", line, err)
		}
		trips = append(trips, t)
	}
	return trips, nil
}

func parseTrip(rec []string) (Trip, error) {
	id, err := strconv.Atoi(rec[0])
	if err != nil {
		return Trip{}, fmt.Errorf("trip_id: %w", err)
	}
	fs := make([]float64, 5)
	for i := 0; i < 5; i++ {
		fs[i], err = strconv.ParseFloat(rec[i+1], 64)
		if err != nil {
			return Trip{}, fmt.Errorf("column %s: %w", csvHeader[i+1], err)
		}
	}
	t := Trip{
		ID:          id,
		RequestTime: fs[0],
		Pickup:      geo.Point{Lat: fs[1], Lng: fs[2]},
		Dropoff:     geo.Point{Lat: fs[3], Lng: fs[4]},
	}
	if t.RequestTime < 0 {
		return Trip{}, fmt.Errorf("negative request time %v", t.RequestTime)
	}
	if !t.Pickup.Valid() || !t.Dropoff.Valid() {
		return Trip{}, fmt.Errorf("invalid coordinates")
	}
	return t, nil
}
