package index

import (
	"sort"
)

// listEntry pairs a potential ride with its estimated arrival time in a
// cluster — the ⟨r, t⟩ tuples of §VI.
type listEntry struct {
	Ride RideID
	ETA  float64
}

// clusterList maintains the potential rides of one cluster in the two
// sort orders the paper prescribes: by non-decreasing arrival time (time-
// window retrieval in O(log n)) and by ride ID (membership testing and
// O(log n) intersection during the two-sided search).
type clusterList struct {
	byETA []listEntry
	byID  []listEntry
}

func (l *clusterList) len() int { return len(l.byID) }

// add inserts the tuple, keeping both orders. The caller guarantees the
// ride is not already present.
func (l *clusterList) add(r RideID, eta float64) {
	e := listEntry{Ride: r, ETA: eta}
	i := sort.Search(len(l.byETA), func(i int) bool {
		if l.byETA[i].ETA != eta {
			return l.byETA[i].ETA > eta
		}
		return l.byETA[i].Ride >= r
	})
	l.byETA = append(l.byETA, listEntry{})
	copy(l.byETA[i+1:], l.byETA[i:])
	l.byETA[i] = e

	j := sort.Search(len(l.byID), func(i int) bool { return l.byID[i].Ride >= r })
	l.byID = append(l.byID, listEntry{})
	copy(l.byID[j+1:], l.byID[j:])
	l.byID[j] = e
}

// remove deletes the ride's tuple; it reports whether the ride was
// present.
func (l *clusterList) remove(r RideID) bool {
	j := sort.Search(len(l.byID), func(i int) bool { return l.byID[i].Ride >= r })
	if j >= len(l.byID) || l.byID[j].Ride != r {
		return false
	}
	eta := l.byID[j].ETA
	l.byID = append(l.byID[:j], l.byID[j+1:]...)

	i := sort.Search(len(l.byETA), func(i int) bool {
		if l.byETA[i].ETA != eta {
			return l.byETA[i].ETA > eta
		}
		return l.byETA[i].Ride >= r
	})
	// Defensive linear fallback in case of float inconsistency.
	for i < len(l.byETA) && (l.byETA[i].Ride != r || l.byETA[i].ETA != eta) {
		i++
	}
	if i < len(l.byETA) {
		l.byETA = append(l.byETA[:i], l.byETA[i+1:]...)
	}
	return true
}

// updateETA changes the ride's arrival estimate, preserving both orders.
func (l *clusterList) updateETA(r RideID, eta float64) {
	if l.remove(r) {
		l.add(r, eta)
	}
}

// eta returns the ride's arrival estimate and whether it is present —
// a binary search on the by-ID order.
func (l *clusterList) eta(r RideID) (float64, bool) {
	j := sort.Search(len(l.byID), func(i int) bool { return l.byID[i].Ride >= r })
	if j < len(l.byID) && l.byID[j].Ride == r {
		return l.byID[j].ETA, true
	}
	return 0, false
}

// window appends to dst the rides with ETA in [t1, t2] (inclusive), using
// a binary search on the by-ETA order, and returns the extended slice.
func (l *clusterList) window(t1, t2 float64, dst []listEntry) []listEntry {
	if t2 < t1 {
		return dst
	}
	i := sort.Search(len(l.byETA), func(i int) bool { return l.byETA[i].ETA >= t1 })
	for ; i < len(l.byETA) && l.byETA[i].ETA <= t2; i++ {
		dst = append(dst, l.byETA[i])
	}
	return dst
}

// windowIDs appends to dst the ride IDs with ETA in [t1, t2] (inclusive).
// It is the hot-path variant of window: the binary search is inlined
// (no sort.Search closure), the endpoints are range-checked first so an
// empty or out-of-window list costs two comparisons, and no intermediate
// entry slice is built. Searches call this once per (cluster, shard)
// pair, so its constant factor multiplies by the shard count.
func (l *clusterList) windowIDs(t1, t2 float64, dst []RideID) []RideID {
	a := l.byETA
	if t2 < t1 || len(a) == 0 || a[0].ETA > t2 || a[len(a)-1].ETA < t1 {
		return dst
	}
	lo, hi := 0, len(a)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if a[mid].ETA < t1 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	for ; lo < len(a) && a[lo].ETA <= t2; lo++ {
		dst = append(dst, a[lo].Ride)
	}
	return dst
}

// windowLinear is the ablation variant of window: a full scan that
// ignores the sorted order. Benchmarks use it to quantify the value of
// the dual sorted lists.
func (l *clusterList) windowLinear(t1, t2 float64, dst []listEntry) []listEntry {
	for _, e := range l.byID {
		if e.ETA >= t1 && e.ETA <= t2 {
			dst = append(dst, e)
		}
	}
	return dst
}
