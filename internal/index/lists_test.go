package index

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// refList is the brute-force reference the property tests compare the
// dual-sorted clusterList against.
type refList map[RideID]float64

func (r refList) window(t1, t2 float64) []RideID {
	var out []RideID
	for id, eta := range r {
		if eta >= t1 && eta <= t2 {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func sortedIDs(entries []listEntry) []RideID {
	out := make([]RideID, len(entries))
	for i, e := range entries {
		out[i] = e.Ride
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func equalIDs(a, b []RideID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// checkOrders validates the two sort invariants.
func checkOrders(t *testing.T, l *clusterList) {
	t.Helper()
	for i := 1; i < len(l.byETA); i++ {
		if l.byETA[i-1].ETA > l.byETA[i].ETA {
			t.Fatal("byETA order violated")
		}
	}
	for i := 1; i < len(l.byID); i++ {
		if l.byID[i-1].Ride >= l.byID[i].Ride {
			t.Fatal("byID order violated")
		}
	}
	if len(l.byETA) != len(l.byID) {
		t.Fatal("order sizes diverged")
	}
}

func TestClusterListBasicOps(t *testing.T) {
	var l clusterList
	l.add(5, 100)
	l.add(3, 50)
	l.add(9, 100) // equal ETA, higher ID
	checkOrders(t, &l)
	if l.len() != 3 {
		t.Fatalf("len = %d", l.len())
	}
	if eta, ok := l.eta(3); !ok || eta != 50 {
		t.Fatalf("eta(3) = %v %v", eta, ok)
	}
	if _, ok := l.eta(4); ok {
		t.Fatal("eta(4) should be absent")
	}
	if !l.remove(5) {
		t.Fatal("remove(5) failed")
	}
	if l.remove(5) {
		t.Fatal("double remove succeeded")
	}
	checkOrders(t, &l)
	l.updateETA(3, 500)
	if eta, _ := l.eta(3); eta != 500 {
		t.Fatalf("updateETA left %v", eta)
	}
	checkOrders(t, &l)
}

func TestClusterListWindowInclusive(t *testing.T) {
	var l clusterList
	l.add(1, 10)
	l.add(2, 20)
	l.add(3, 30)
	got := l.window(10, 30, nil)
	if len(got) != 3 {
		t.Fatalf("inclusive window returned %d entries", len(got))
	}
	got = l.window(10.5, 29.5, nil)
	if len(got) != 1 || got[0].Ride != 2 {
		t.Fatalf("inner window = %v", got)
	}
	if got := l.window(31, 40, nil); len(got) != 0 {
		t.Fatal("empty window must be empty")
	}
}

// TestClusterListQuickAgainstReference drives random operation sequences
// against the reference map with testing/quick-generated seeds.
func TestClusterListQuickAgainstReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var l clusterList
		ref := refList{}
		for op := 0; op < 300; op++ {
			switch r := rng.Intn(10); {
			case r < 4: // add
				id := RideID(rng.Intn(50))
				if _, exists := ref[id]; exists {
					continue
				}
				eta := float64(rng.Intn(1000))
				l.add(id, eta)
				ref[id] = eta
			case r < 6: // remove
				id := RideID(rng.Intn(50))
				_, exists := ref[id]
				got := l.remove(id)
				if got != exists {
					return false
				}
				delete(ref, id)
			case r < 8: // update
				id := RideID(rng.Intn(50))
				if _, exists := ref[id]; !exists {
					continue
				}
				eta := float64(rng.Intn(1000))
				l.updateETA(id, eta)
				ref[id] = eta
			default: // window query
				t1 := float64(rng.Intn(1000))
				t2 := t1 + float64(rng.Intn(300))
				got := sortedIDs(l.window(t1, t2, nil))
				lin := sortedIDs(l.windowLinear(t1, t2, nil))
				want := ref.window(t1, t2)
				if !equalIDs(got, want) || !equalIDs(lin, want) {
					return false
				}
			}
			// Membership invariant.
			for id, eta := range ref {
				gotETA, ok := l.eta(id)
				if !ok || gotETA != eta {
					return false
				}
			}
			if l.len() != len(ref) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestClusterListDuplicateETAs(t *testing.T) {
	// Many rides sharing one ETA: removal must pick the right tuple.
	var l clusterList
	for id := RideID(1); id <= 20; id++ {
		l.add(id, 42)
	}
	checkOrders(t, &l)
	for id := RideID(1); id <= 20; id += 2 {
		if !l.remove(id) {
			t.Fatalf("remove(%d) failed", id)
		}
	}
	checkOrders(t, &l)
	if l.len() != 10 {
		t.Fatalf("len = %d", l.len())
	}
	for id := RideID(2); id <= 20; id += 2 {
		if _, ok := l.eta(id); !ok {
			t.Fatalf("ride %d lost", id)
		}
	}
}
