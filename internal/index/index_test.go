package index

import (
	"math"
	"math/rand"
	"testing"

	"xar/internal/discretize"
	"xar/internal/roadnet"
)

// testWorld builds a small city + discretization shared by the tests.
func testWorld(t testing.TB) *discretize.Discretization {
	t.Helper()
	city, err := roadnet.GenerateCity(roadnet.DefaultCityConfig(22, 13, 42))
	if err != nil {
		t.Fatal(err)
	}
	d, err := discretize.Build(city, discretize.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func newTestIndex(t testing.TB, d *discretize.Discretization) *Index {
	t.Helper()
	ix, err := New(d, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

// makeRide builds a ride between two road nodes with a shortest-path
// route, constant-speed ETAs and a detour limit.
func makeRide(t testing.TB, d *discretize.Discretization, ix *Index, from, to roadnet.NodeID, depart, detour float64) *Ride {
	t.Helper()
	s := roadnet.NewSearcher(d.City().Graph)
	res := s.ShortestPath(from, to)
	if !res.Reachable() {
		t.Fatalf("no route %d→%d", from, to)
	}
	r := &Ride{
		ID:          ix.NextID(),
		Source:      d.City().Graph.Point(from),
		Dest:        d.City().Graph.Point(to),
		Departure:   depart,
		SeatsTotal:  4,
		SeatsAvail:  3,
		Route:       res.Path,
		DetourLimit: detour,
	}
	r.RouteETA = make([]float64, len(res.Path))
	var cum float64
	for i := 1; i < len(res.Path); i++ {
		cum += segLen(t, d, res.Path[i-1], res.Path[i]) / 7.0
		r.RouteETA[i] = depart + cum
	}
	r.RouteETA[0] = depart
	r.Via = []ViaPoint{
		{RouteIdx: 0, Node: from, ETA: depart, Kind: ViaSource},
		{RouteIdx: len(res.Path) - 1, Node: to, ETA: r.RouteETA[len(res.Path)-1], Kind: ViaDest},
	}
	return r
}

func segLen(t testing.TB, d *discretize.Discretization, a, b roadnet.NodeID) float64 {
	t.Helper()
	l, err := d.City().Graph.PathLength([]roadnet.NodeID{a, b})
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// pickCrossingNodes returns two nodes far apart in the city.
func pickCrossingNodes(t testing.TB, d *discretize.Discretization) (roadnet.NodeID, roadnet.NodeID) {
	t.Helper()
	g := d.City().Graph
	return 0, roadnet.NodeID(g.NumNodes() - 1)
}

func TestNewValidation(t *testing.T) {
	d := testWorld(t)
	if _, err := New(d, Config{AvgSpeed: 0}); err == nil {
		t.Fatal("zero speed must be rejected")
	}
}

func TestInsertValidation(t *testing.T) {
	d := testWorld(t)
	ix := newTestIndex(t, d)
	if err := ix.Insert(nil); err == nil {
		t.Fatal("nil ride must be rejected")
	}
	from, to := pickCrossingNodes(t, d)
	r := makeRide(t, d, ix, from, to, 0, 1500)
	if err := ix.Insert(r); err != nil {
		t.Fatal(err)
	}
	if err := ix.Insert(r); err == nil {
		t.Fatal("duplicate ID must be rejected")
	}
	bad := makeRide(t, d, ix, from, to, 0, 1500)
	bad.RouteETA = bad.RouteETA[:1]
	if err := ix.Insert(bad); err == nil {
		t.Fatal("inconsistent ETAs must be rejected")
	}
	bad2 := makeRide(t, d, ix, from, to, 0, -5)
	if err := ix.Insert(bad2); err == nil {
		t.Fatal("negative detour must be rejected")
	}
	bad3 := makeRide(t, d, ix, from, to, 0, 1500)
	bad3.Via = bad3.Via[:1]
	if err := ix.Insert(bad3); err == nil {
		t.Fatal("single via-point must be rejected")
	}
}

func TestInsertPopulatesClusters(t *testing.T) {
	d := testWorld(t)
	ix := newTestIndex(t, d)
	from, to := pickCrossingNodes(t, d)
	r := makeRide(t, d, ix, from, to, 1000, 1500)
	if err := ix.Insert(r); err != nil {
		t.Fatal(err)
	}
	pts := r.PassThroughClusters()
	if len(pts) < 2 {
		t.Fatalf("cross-city ride passes through %d clusters, want several", len(pts))
	}
	reach := r.ReachableClusters()
	if len(reach) < len(pts) {
		t.Fatalf("reachable (%d) must include pass-through (%d)", len(reach), len(pts))
	}
	// The ride must be listed in every reachable cluster.
	for _, c := range reach {
		if _, ok := ix.HasPotentialRide(c, r.ID); !ok {
			t.Fatalf("ride missing from cluster %d list", c)
		}
	}
	if err := ix.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPassThroughETAsMatchRoute(t *testing.T) {
	d := testWorld(t)
	ix := newTestIndex(t, d)
	from, to := pickCrossingNodes(t, d)
	r := makeRide(t, d, ix, from, to, 500, 1500)
	if err := ix.Insert(r); err != nil {
		t.Fatal(err)
	}
	for _, e := range r.pt {
		if e.ETA != r.RouteETA[e.FirstIdx] {
			t.Fatalf("pt cluster %d ETA %v != route ETA %v", e.Cluster, e.ETA, r.RouteETA[e.FirstIdx])
		}
		if e.FirstIdx > e.LastIdx {
			t.Fatalf("pt run inverted: %d > %d", e.FirstIdx, e.LastIdx)
		}
		// Every node in the run maps to the entry's cluster.
		for i := e.FirstIdx; i <= e.LastIdx; i++ {
			if c := d.ClusterOfNode(r.Route[i]); c != int(e.Cluster) {
				t.Fatalf("route idx %d in cluster %d, pt says %d", i, c, e.Cluster)
			}
		}
	}
}

func TestReachableRespectsDetourLimit(t *testing.T) {
	d := testWorld(t)
	ix := newTestIndex(t, d)
	from, to := pickCrossingNodes(t, d)
	r := makeRide(t, d, ix, from, to, 0, 800)
	if err := ix.Insert(r); err != nil {
		t.Fatal(err)
	}
	for c, refs := range r.support {
		for _, ref := range refs {
			if ref.Detour > r.DetourLimit+1e-9 {
				t.Fatalf("cluster %d reachable with detour %.1f > limit %.1f", c, ref.Detour, r.DetourLimit)
			}
			// The raw cluster distance from the supporting pass-through
			// cluster is also within the limit.
			ptCluster := int(r.pt[ref.Pt].Cluster)
			if dd := d.ClusterDist(ptCluster, int(c)); dd > r.DetourLimit+1e-9 {
				t.Fatalf("cluster %d at raw distance %.1f > limit", c, dd)
			}
		}
	}
}

func TestZeroDetourOnlyPassThrough(t *testing.T) {
	d := testWorld(t)
	ix := newTestIndex(t, d)
	from, to := pickCrossingNodes(t, d)
	r := makeRide(t, d, ix, from, to, 0, 0)
	if err := ix.Insert(r); err != nil {
		t.Fatal(err)
	}
	pts := map[int]bool{}
	for _, c := range r.PassThroughClusters() {
		pts[c] = true
	}
	for _, c := range r.ReachableClusters() {
		if !pts[c] {
			t.Fatalf("zero-detour ride reaches non-pass-through cluster %d", c)
		}
	}
}

func TestRemove(t *testing.T) {
	d := testWorld(t)
	ix := newTestIndex(t, d)
	from, to := pickCrossingNodes(t, d)
	r := makeRide(t, d, ix, from, to, 0, 1500)
	if err := ix.Insert(r); err != nil {
		t.Fatal(err)
	}
	reach := append([]int(nil), r.ReachableClusters()...)
	if !ix.Remove(r.ID) {
		t.Fatal("Remove returned false for a registered ride")
	}
	if ix.Remove(r.ID) {
		t.Fatal("second Remove must return false")
	}
	for _, c := range reach {
		if _, ok := ix.HasPotentialRide(c, r.ID); ok {
			t.Fatalf("removed ride still listed in cluster %d", c)
		}
		if ix.ClusterListLen(c) != 0 {
			t.Fatalf("cluster %d still has %d entries", c, ix.ClusterListLen(c))
		}
	}
	if err := ix.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPotentialRidesTimeWindow(t *testing.T) {
	d := testWorld(t)
	ix := newTestIndex(t, d)
	from, to := pickCrossingNodes(t, d)
	r1 := makeRide(t, d, ix, from, to, 0, 1200)
	r2 := makeRide(t, d, ix, from, to, 3600, 1200)
	if err := ix.Insert(r1); err != nil {
		t.Fatal(err)
	}
	if err := ix.Insert(r2); err != nil {
		t.Fatal(err)
	}
	// Pick a cluster both rides pass through (same route).
	shared := r1.PassThroughClusters()[0]
	eta1, ok1 := ix.HasPotentialRide(shared, r1.ID)
	eta2, ok2 := ix.HasPotentialRide(shared, r2.ID)
	if !ok1 || !ok2 {
		t.Fatal("both rides must be listed in the shared cluster")
	}
	// Window containing only ride 1.
	got := ix.PotentialRides(shared, eta1-1, eta1+1, nil)
	found1, found2 := false, false
	for _, id := range got {
		if id == r1.ID {
			found1 = true
		}
		if id == r2.ID {
			found2 = true
		}
	}
	if !found1 || found2 {
		t.Fatalf("narrow window around ride1: found1=%v found2=%v (etas %v %v)", found1, found2, eta1, eta2)
	}
	// Window containing both.
	got = ix.PotentialRides(shared, math.Min(eta1, eta2)-1, math.Max(eta1, eta2)+1, nil)
	if len(got) < 2 {
		t.Fatalf("wide window found %d rides, want 2", len(got))
	}
	// Empty and inverted windows.
	if got := ix.PotentialRides(shared, eta2+10000, eta2+20000, nil); len(got) != 0 {
		t.Fatalf("far-future window found %d rides", len(got))
	}
	if got := ix.PotentialRides(shared, 100, 50, nil); len(got) != 0 {
		t.Fatal("inverted window must be empty")
	}
	if got := ix.PotentialRides(-1, 0, 1, nil); len(got) != 0 {
		t.Fatal("invalid cluster must be empty")
	}
}

func TestLinearWindowScanMatchesBinary(t *testing.T) {
	d := testWorld(t)
	cfgLin := DefaultConfig()
	cfgLin.LinearWindowScan = true
	ixA := newTestIndex(t, d)
	ixB, err := New(d, cfgLin)
	if err != nil {
		t.Fatal(err)
	}
	from, to := pickCrossingNodes(t, d)
	for i := 0; i < 10; i++ {
		ra := makeRide(t, d, ixA, from, to, float64(i*600), 1000)
		rb := *ra
		rb.ID = ra.ID
		if err := ixA.Insert(ra); err != nil {
			t.Fatal(err)
		}
		rb2 := makeRide(t, d, ixB, from, to, float64(i*600), 1000)
		rb2.ID = ra.ID // align IDs
		ixB.nextID = ra.ID
		if err := ixB.Insert(rb2); err != nil {
			t.Fatal(err)
		}
	}
	shared := 0
	for c := 0; c < d.NumClusters(); c++ {
		if ixA.ClusterListLen(c) > 0 {
			shared = c
			break
		}
	}
	a := ixA.PotentialRides(shared, 0, 4000, nil)
	b := ixB.PotentialRides(shared, 0, 4000, nil)
	if len(a) != len(b) {
		t.Fatalf("binary window %d rides, linear %d", len(a), len(b))
	}
}

func TestAdvanceRemovesObsoleteClusters(t *testing.T) {
	d := testWorld(t)
	ix := newTestIndex(t, d)
	from, to := pickCrossingNodes(t, d)
	r := makeRide(t, d, ix, from, to, 0, 1000)
	if err := ix.Insert(r); err != nil {
		t.Fatal(err)
	}
	firstCluster := int(r.pt[0].Cluster)
	before := len(r.ReachableClusters())

	// Drive to the end of the route.
	if err := ix.Advance(r.ID, len(r.Route)-1); err != nil {
		t.Fatal(err)
	}
	after := len(r.ReachableClusters())
	if after >= before {
		t.Fatalf("advance to end kept %d of %d clusters", after, before)
	}
	// The first pass-through cluster must no longer list the ride unless
	// a later pass-through still supports it.
	stillSupported := false
	for _, ref := range r.support[int32(firstCluster)] {
		if !r.pt[ref.Pt].Crossed {
			stillSupported = true
		}
	}
	_, listed := ix.HasPotentialRide(firstCluster, r.ID)
	if listed != stillSupported {
		t.Fatalf("cluster %d: listed=%v but valid supports=%v", firstCluster, listed, stillSupported)
	}
	if err := ix.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestAdvanceValidation(t *testing.T) {
	d := testWorld(t)
	ix := newTestIndex(t, d)
	if err := ix.Advance(999, 1); err == nil {
		t.Fatal("advancing an unknown ride must error")
	}
	from, to := pickCrossingNodes(t, d)
	r := makeRide(t, d, ix, from, to, 0, 1000)
	if err := ix.Insert(r); err != nil {
		t.Fatal(err)
	}
	if err := ix.Advance(r.ID, 5); err != nil {
		t.Fatal(err)
	}
	if err := ix.Advance(r.ID, 3); err == nil {
		t.Fatal("moving backwards must error")
	}
	// Past-the-end positions clamp.
	if err := ix.Advance(r.ID, len(r.Route)+100); err != nil {
		t.Fatal(err)
	}
	if r.Progress != len(r.Route)-1 {
		t.Fatalf("progress = %d, want clamp to %d", r.Progress, len(r.Route)-1)
	}
}

func TestAdvanceIncremental(t *testing.T) {
	d := testWorld(t)
	ix := newTestIndex(t, d)
	from, to := pickCrossingNodes(t, d)
	r := makeRide(t, d, ix, from, to, 0, 1000)
	if err := ix.Insert(r); err != nil {
		t.Fatal(err)
	}
	prev := len(r.ReachableClusters())
	for pos := 0; pos < len(r.Route); pos += 5 {
		if err := ix.Advance(r.ID, pos); err != nil {
			t.Fatal(err)
		}
		cur := len(r.ReachableClusters())
		if cur > prev {
			t.Fatalf("reachable clusters grew during tracking: %d → %d", prev, cur)
		}
		prev = cur
		if err := ix.CheckInvariants(); err != nil {
			t.Fatalf("pos %d: %v", pos, err)
		}
	}
}

func TestSupportsOrdering(t *testing.T) {
	d := testWorld(t)
	ix := newTestIndex(t, d)
	from, to := pickCrossingNodes(t, d)
	r := makeRide(t, d, ix, from, to, 0, 1500)
	if err := ix.Insert(r); err != nil {
		t.Fatal(err)
	}
	for _, c := range r.ReachableClusters() {
		sups := ix.Supports(r.ID, c)
		if len(sups) == 0 {
			t.Fatalf("cluster %d has no supports", c)
		}
		for i := 1; i < len(sups); i++ {
			if sups[i].Detour < sups[i-1].Detour {
				t.Fatal("supports not sorted by detour")
			}
		}
	}
	if got := ix.Supports(999, 0); got != nil {
		t.Fatal("unknown ride must have nil supports")
	}
}

func TestReregisterAfterDetourShrink(t *testing.T) {
	d := testWorld(t)
	ix := newTestIndex(t, d)
	from, to := pickCrossingNodes(t, d)
	r := makeRide(t, d, ix, from, to, 0, 2000)
	if err := ix.Insert(r); err != nil {
		t.Fatal(err)
	}
	before := len(r.ReachableClusters())
	r.DetourLimit = 100
	if err := ix.Reregister(r); err != nil {
		t.Fatal(err)
	}
	after := len(r.ReachableClusters())
	if after >= before {
		t.Fatalf("shrinking detour kept %d of %d clusters", after, before)
	}
	if err := ix.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Reregister of an unknown ride errors.
	ghost := makeRide(t, d, ix, from, to, 0, 100)
	if err := ix.Reregister(ghost); err == nil {
		t.Fatal("reregistering an uninserted ride must error")
	}
}

func TestNoReachablePrecomputeAblation(t *testing.T) {
	d := testWorld(t)
	cfg := DefaultConfig()
	cfg.NoReachablePrecompute = true
	ix, err := New(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	from, to := pickCrossingNodes(t, d)
	r := makeRide(t, d, ix, from, to, 0, 2000)
	if err := ix.Insert(r); err != nil {
		t.Fatal(err)
	}
	pts := map[int]bool{}
	for _, c := range r.PassThroughClusters() {
		pts[c] = true
	}
	for _, c := range r.ReachableClusters() {
		if !pts[c] {
			t.Fatalf("ablated index indexed non-pass-through cluster %d", c)
		}
	}
}

func TestRandomOperationSequenceKeepsInvariants(t *testing.T) {
	d := testWorld(t)
	ix := newTestIndex(t, d)
	g := d.City().Graph
	rng := rand.New(rand.NewSource(77))
	var live []RideID
	for step := 0; step < 200; step++ {
		switch op := rng.Intn(10); {
		case op < 5: // insert
			from := roadnet.NodeID(rng.Intn(g.NumNodes()))
			to := roadnet.NodeID(rng.Intn(g.NumNodes()))
			if from == to {
				continue
			}
			r := makeRide(t, d, ix, from, to, float64(rng.Intn(7200)), float64(rng.Intn(2000)))
			if err := ix.Insert(r); err != nil {
				t.Fatal(err)
			}
			live = append(live, r.ID)
		case op < 8: // advance
			if len(live) == 0 {
				continue
			}
			id := live[rng.Intn(len(live))]
			r := ix.Ride(id)
			pos := r.Progress + rng.Intn(10)
			if err := ix.Advance(id, pos); err != nil {
				t.Fatal(err)
			}
		default: // remove
			if len(live) == 0 {
				continue
			}
			i := rng.Intn(len(live))
			if !ix.Remove(live[i]) {
				t.Fatal("failed to remove live ride")
			}
			live = append(live[:i], live[i+1:]...)
		}
		if err := ix.CheckInvariants(); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
	}
}

func TestNextIDMonotonic(t *testing.T) {
	d := testWorld(t)
	ix := newTestIndex(t, d)
	prev := ix.NextID()
	for i := 0; i < 100; i++ {
		id := ix.NextID()
		if id <= prev {
			t.Fatalf("NextID not monotonic: %d after %d", id, prev)
		}
		prev = id
	}
}

func TestRidesIteration(t *testing.T) {
	d := testWorld(t)
	ix := newTestIndex(t, d)
	from, to := pickCrossingNodes(t, d)
	for i := 0; i < 5; i++ {
		r := makeRide(t, d, ix, from, to, float64(i), 500)
		if err := ix.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	count := 0
	ix.Rides(func(*Ride) bool { count++; return true })
	if count != 5 || ix.NumRides() != 5 {
		t.Fatalf("iterated %d rides, NumRides=%d, want 5", count, ix.NumRides())
	}
	count = 0
	ix.Rides(func(*Ride) bool { count++; return false })
	if count != 1 {
		t.Fatalf("early-stop iteration visited %d", count)
	}
	if ix.Ride(RideID(9999)) != nil {
		t.Fatal("unknown ride must be nil")
	}
}

func TestViaKindString(t *testing.T) {
	for _, k := range []ViaKind{ViaSource, ViaDest, ViaPickup, ViaDropoff} {
		if k.String() == "" {
			t.Fatal("empty ViaKind string")
		}
	}
	if ViaKind(42).String() != "viakind(42)" {
		t.Fatal("unknown kind string")
	}
}

func TestStatsTracksOccupancy(t *testing.T) {
	d := testWorld(t)
	ix := newTestIndex(t, d)
	if s := ix.Stats(); s.Rides != 0 || s.ListEntries != 0 {
		t.Fatalf("empty index stats: %+v", s)
	}
	from, to := pickCrossingNodes(t, d)
	r1 := makeRide(t, d, ix, from, to, 0, 1500)
	if err := ix.Insert(r1); err != nil {
		t.Fatal(err)
	}
	s1 := ix.Stats()
	if s1.Rides != 1 || s1.ListEntries == 0 || s1.SupportRecords == 0 || s1.PassThroughRuns == 0 {
		t.Fatalf("stats after one ride: %+v", s1)
	}
	if s1.ListEntries != len(r1.ReachableClusters()) {
		t.Fatalf("list entries %d != reachable clusters %d", s1.ListEntries, len(r1.ReachableClusters()))
	}
	r2 := makeRide(t, d, ix, from, to, 100, 1500)
	if err := ix.Insert(r2); err != nil {
		t.Fatal(err)
	}
	s2 := ix.Stats()
	if s2.ListEntries <= s1.ListEntries || s2.MaxListLen < 2 {
		t.Fatalf("stats after two identical rides: %+v", s2)
	}
	ix.Remove(r1.ID)
	ix.Remove(r2.ID)
	if s := ix.Stats(); s.ListEntries != 0 || s.Rides != 0 {
		t.Fatalf("stats after removal: %+v", s)
	}
}
