// Package index implements the XAR in-memory indexing structure (§VI of
// the paper): rides with via-points and segments, per-segment pass-through
// clusters, reachable clusters under the detour test, and per-cluster
// potential-ride lists maintained in two sort orders (by estimated time of
// arrival and by ride ID).
//
// The index is the component that eliminates shortest-path computation
// from the search path: all spatial reasoning during a search happens in
// terms of precomputed cluster distances. Shortest paths are computed only
// when a ride is created and when a booking is confirmed, exactly as the
// paper prescribes.
//
// A single Index is not safe for concurrent use. The core engine does
// not guard it with one global lock; it partitions rides across a
// Sharded set of lock-striped Index instances keyed by ride ID, so
// searches take brief per-shard read locks and mutations exclude only
// the one shard that owns the ride. Rides carry a revision counter
// (Ride.Rev) that the engine's optimistic booking protocol compares to
// detect concurrent mutation between snapshot and commit.
package index

import (
	"fmt"
	"math"

	"xar/internal/geo"
	"xar/internal/roadnet"
)

// RideID uniquely identifies a ride in the system.
type RideID int64

// ViaPoint is a location the ride must pass through: the ride's own
// source and destination plus every co-rider pickup/drop-off (§VI item 6).
// Via-points are distinct from way-points (route nodes).
type ViaPoint struct {
	RouteIdx int            // index into Ride.Route
	Node     roadnet.NodeID // road node of the via-point
	ETA      float64        // seconds since epoch
	Kind     ViaKind
}

// ViaKind tags why a via-point exists.
type ViaKind uint8

// Via-point kinds.
const (
	ViaSource ViaKind = iota
	ViaDest
	ViaPickup
	ViaDropoff
)

func (k ViaKind) String() string {
	switch k {
	case ViaSource:
		return "source"
	case ViaDest:
		return "dest"
	case ViaPickup:
		return "pickup"
	case ViaDropoff:
		return "dropoff"
	default:
		return fmt.Sprintf("viakind(%d)", uint8(k))
	}
}

// Ride is a ride offer tracked by the index (§VI items 1–10).
type Ride struct {
	ID RideID
	// Owner identifies the driver for social-graph match prioritization
	// (0 = unknown).
	Owner     int64
	Source    geo.Point
	Dest      geo.Point
	Departure float64 // seconds since epoch

	SeatsTotal int
	SeatsAvail int

	// Route is the current node path from source to destination; RouteETA
	// holds the estimated arrival time at each route node, computed from
	// edge travel times when the ride is created or re-routed.
	Route    []roadnet.NodeID
	RouteETA []float64

	// Via holds the via-points in route order; Via[0] is the source and
	// Via[len-1] the destination. The segment s is the portion of the
	// route between Via[s] and Via[s+1].
	Via []ViaPoint

	// DetourLimit is the *remaining* detour budget in meters. Each
	// booking decrements it by the extra distance the booking added;
	// cancellations restore it. DetourLimitInitial is the driver's
	// original tolerance and BaseRouteLen the length of the original
	// (booking-free) shortest route — together they let a cancellation
	// recompute the remaining budget exactly.
	DetourLimit        float64
	DetourLimitInitial float64
	BaseRouteLen       float64

	// Progress is the index of the last route node the vehicle has
	// passed. Tracking advances it; clusters behind it become obsolete.
	Progress int

	// Rev is the ride's revision counter, bumped on every committed
	// mutation of booking-relevant state (route/via/budget/seats via
	// Reregister, progress via Advance). The engine's optimistic booking
	// protocol snapshots Rev under a read lock, computes the splice
	// unlocked, and commits only if Rev is unchanged under the write
	// lock — a changed Rev means the splice was computed against stale
	// state and the booking retries.
	Rev uint64

	// Index registration state (maintained by Index).
	pt      []ptEntry
	support map[int32][]supRef
}

// Clone returns a deep copy of the ride: a snapshot that stays valid
// (and race-free) after the engine releases the ride's shard lock.
// Registration state is cloned too, so read-only helpers like
// PassThroughClusters and ReachableClusters work on the copy.
func (r *Ride) Clone() *Ride {
	if r == nil {
		return nil
	}
	c := *r
	c.Route = append([]roadnet.NodeID(nil), r.Route...)
	c.RouteETA = append([]float64(nil), r.RouteETA...)
	c.Via = append([]ViaPoint(nil), r.Via...)
	c.pt = append([]ptEntry(nil), r.pt...)
	for i := range c.pt {
		c.pt[i].Supported = append([]int32(nil), r.pt[i].Supported...)
	}
	if r.support != nil {
		c.support = make(map[int32][]supRef, len(r.support))
		for k, v := range r.support {
			c.support[k] = append([]supRef(nil), v...)
		}
	}
	return &c
}

// ptEntry is one pass-through cluster of one segment of the ride.
type ptEntry struct {
	Cluster   int32
	Seg       int32 // segment index: between Via[Seg] and Via[Seg+1]
	FirstIdx  int32 // first route index inside the cluster (this run)
	LastIdx   int32 // last route index inside the cluster (this run)
	ETA       float64
	Crossed   bool
	Supported []int32 // clusters this entry supports (incl. itself)
}

// supRef records that pass-through entry Pt lets the ride serve cluster
// with the given extra detour cost and estimated time of arrival.
type supRef struct {
	Pt     int32   // index into Ride.pt
	Detour float64 // meters of extra driving to serve this cluster
	ETA    float64 // estimated arrival in the cluster
}

// Support describes, for search, one way a ride can serve a cluster.
type Support struct {
	Order  int     // position of the supporting pass-through along the route
	Seg    int     // segment of the supporting pass-through
	Detour float64 // meters of extra driving
	ETA    float64 // seconds since epoch
}

// NumSegments returns the number of route segments (via-point count − 1).
func (r *Ride) NumSegments() int {
	if len(r.Via) < 2 {
		return 0
	}
	return len(r.Via) - 1
}

// PassThroughClusters returns the distinct not-yet-crossed pass-through
// clusters in route order (diagnostics and tests).
func (r *Ride) PassThroughClusters() []int {
	var out []int
	seen := map[int32]bool{}
	for _, e := range r.pt {
		if e.Crossed || seen[e.Cluster] {
			continue
		}
		seen[e.Cluster] = true
		out = append(out, int(e.Cluster))
	}
	return out
}

// ReachableClusters returns the distinct clusters the ride can currently
// serve (the union of supported clusters over valid pass-throughs).
func (r *Ride) ReachableClusters() []int {
	out := make([]int, 0, len(r.support))
	for c := range r.support {
		out = append(out, int(c))
	}
	return out
}

// ArrivalAt returns the ride's remaining-route ETA bounds (departure of
// the current position and arrival at the destination).
func (r *Ride) ArrivalAt() (start, end float64) {
	if len(r.RouteETA) == 0 {
		return math.NaN(), math.NaN()
	}
	return r.RouteETA[0], r.RouteETA[len(r.RouteETA)-1]
}

// segmentOf returns the segment index containing route index idx.
func (r *Ride) segmentOf(idx int) int {
	for s := 0; s+1 < len(r.Via); s++ {
		if idx >= r.Via[s].RouteIdx && idx <= r.Via[s+1].RouteIdx {
			if idx == r.Via[s+1].RouteIdx && s+2 < len(r.Via) {
				continue // boundary node belongs to the next segment
			}
			return s
		}
	}
	return len(r.Via) - 2
}
