package index

import (
	"fmt"
	"math"
	"sort"

	"xar/internal/discretize"
)

// Config tunes the index.
type Config struct {
	// AvgSpeed (m/s) converts cluster distances into the ETA estimates
	// attached to reachable clusters (pass-through ETAs come from the
	// route itself).
	AvgSpeed float64
	// LinearWindowScan disables the by-ETA binary search (ablation).
	LinearWindowScan bool
	// NoReachablePrecompute disables the reachable-cluster expansion at
	// registration time (ablation): only pass-through clusters are
	// indexed, so searches only see rides passing directly through a
	// walkable cluster.
	NoReachablePrecompute bool
}

// DefaultConfig returns production settings.
func DefaultConfig() Config {
	return Config{AvgSpeed: 7.0}
}

// Index is the XAR in-memory ride index built over a region
// discretization. Not safe for concurrent use (see package comment).
type Index struct {
	cfg  Config
	disc *discretize.Discretization

	rides    map[RideID]*Ride
	clusters []clusterList

	// neighbors[c] lists all clusters sorted by ascending distance from
	// c, so "clusters within d of C" is a prefix.
	neighbors [][]neighborEntry

	nextID RideID
}

type neighborEntry struct {
	Cluster int32
	Dist    float64
}

// New builds an empty index over disc.
func New(disc *discretize.Discretization, cfg Config) (*Index, error) {
	if cfg.AvgSpeed <= 0 {
		return nil, fmt.Errorf("index: AvgSpeed must be positive, got %v", cfg.AvgSpeed)
	}
	return newWithNeighbors(disc, cfg, buildNeighbors(disc)), nil
}

// buildNeighbors computes the per-cluster sorted neighbor table. The
// table is immutable after construction and O(k²), so sharded indexes
// build it once and share it read-only across all shards.
func buildNeighbors(disc *discretize.Discretization) [][]neighborEntry {
	k := disc.NumClusters()
	neighbors := make([][]neighborEntry, k)
	for c := 0; c < k; c++ {
		row := make([]neighborEntry, 0, k)
		for o := 0; o < k; o++ {
			row = append(row, neighborEntry{Cluster: int32(o), Dist: disc.ClusterDist(c, o)})
		}
		sort.Slice(row, func(i, j int) bool {
			if row[i].Dist != row[j].Dist {
				return row[i].Dist < row[j].Dist
			}
			return row[i].Cluster < row[j].Cluster
		})
		neighbors[c] = row
	}
	return neighbors
}

// newWithNeighbors assembles an empty index around a prebuilt (possibly
// shared) neighbor table.
func newWithNeighbors(disc *discretize.Discretization, cfg Config, neighbors [][]neighborEntry) *Index {
	return &Index{
		cfg:       cfg,
		disc:      disc,
		rides:     make(map[RideID]*Ride),
		clusters:  make([]clusterList, disc.NumClusters()),
		neighbors: neighbors,
	}
}

// Disc exposes the discretization the index was built over.
func (ix *Index) Disc() *discretize.Discretization { return ix.disc }

// NumRides returns the number of registered rides.
func (ix *Index) NumRides() int { return len(ix.rides) }

// Ride returns a registered ride, or nil.
func (ix *Index) Ride(id RideID) *Ride { return ix.rides[id] }

// Rides calls f for every registered ride until f returns false.
func (ix *Index) Rides(f func(*Ride) bool) {
	for _, r := range ix.rides {
		if !f(r) {
			return
		}
	}
}

// NextID allocates a fresh ride ID.
func (ix *Index) NextID() RideID {
	ix.nextID++
	return ix.nextID
}

// Insert registers a fully-populated ride (ID, route, route ETAs,
// via-points, detour limit set by the caller): it computes the ride's
// pass-through clusters per segment, the reachable clusters under the
// paper's detour test, and adds the ride to every affected cluster's
// potential-ride lists.
func (ix *Index) Insert(r *Ride) error {
	if r == nil {
		return fmt.Errorf("index: nil ride")
	}
	if _, dup := ix.rides[r.ID]; dup {
		return fmt.Errorf("index: duplicate ride ID %d", r.ID)
	}
	if len(r.Route) < 2 || len(r.RouteETA) != len(r.Route) {
		return fmt.Errorf("index: ride %d has inconsistent route (%d nodes, %d ETAs)", r.ID, len(r.Route), len(r.RouteETA))
	}
	if len(r.Via) < 2 {
		return fmt.Errorf("index: ride %d has %d via-points, need >= 2", r.ID, len(r.Via))
	}
	if r.DetourLimit < 0 {
		return fmt.Errorf("index: ride %d has negative detour limit", r.ID)
	}
	ix.register(r)
	ix.rides[r.ID] = r
	return nil
}

// Remove unregisters a ride entirely (completed or cancelled).
func (ix *Index) Remove(id RideID) bool {
	r, ok := ix.rides[id]
	if !ok {
		return false
	}
	ix.unregister(r)
	delete(ix.rides, id)
	return true
}

// Reregister rebuilds a ride's cluster registrations after its route,
// via-points or detour limit changed (booking confirmed, cancellation).
// It bumps the ride's revision counter: optimistic engine commits detect
// concurrent mutations by comparing Rev.
func (ix *Index) Reregister(r *Ride) error {
	if _, ok := ix.rides[r.ID]; !ok {
		return fmt.Errorf("index: ride %d not registered", r.ID)
	}
	r.Rev++
	ix.unregister(r)
	ix.register(r)
	return nil
}

// register computes pt entries and supports and fills cluster lists.
func (ix *Index) register(r *Ride) {
	r.pt = r.pt[:0]
	r.support = make(map[int32][]supRef)

	// 1. Pass-through clusters: walk the route, map node → cluster, and
	// emit one entry per maximal run of equal cluster within a segment.
	for i := r.Progress; i < len(r.Route); i++ {
		c := ix.disc.ClusterOfNode(r.Route[i])
		if c < 0 {
			continue
		}
		seg := int32(r.segmentOf(i))
		if n := len(r.pt); n > 0 && r.pt[n-1].Cluster == int32(c) && r.pt[n-1].Seg == seg && int(r.pt[n-1].LastIdx) == i-1 {
			r.pt[n-1].LastIdx = int32(i)
			continue
		}
		r.pt = append(r.pt, ptEntry{
			Cluster:  int32(c),
			Seg:      seg,
			FirstIdx: int32(i),
			LastIdx:  int32(i),
			ETA:      r.RouteETA[i],
		})
	}

	// 2. Reachable clusters per pass-through entry, with the detour test
	//    d(C,C') + d(C',v_{i+1}) − d(C,v_{i+1}) ≤ d  (§VI).
	// Distances to the via-point are approximated by distances to the
	// via-point's cluster, consistent with the ε error budget; via-points
	// outside any cluster skip the refinement (conservative superset —
	// the booking-time shortest paths remain the ground truth).
	for pi := range r.pt {
		e := &r.pt[pi]
		c := e.Cluster
		e.Supported = append(e.Supported[:0], c)
		ix.addSupport(c, supRef{Pt: int32(pi), Detour: 0, ETA: e.ETA}, r)

		if ix.cfg.NoReachablePrecompute {
			continue
		}
		viaCluster := int32(-1)
		if int(e.Seg)+1 < len(r.Via) {
			viaCluster = int32(ix.disc.ClusterOfNode(r.Via[e.Seg+1].Node))
		}
		for _, nb := range ix.neighbors[c] {
			if nb.Dist > r.DetourLimit {
				break // sorted: everything after is farther
			}
			if nb.Cluster == c {
				continue
			}
			detour := nb.Dist
			if viaCluster >= 0 {
				dCVia := ix.disc.ClusterDist(int(c), int(viaCluster))
				dC2Via := ix.disc.ClusterDist(int(nb.Cluster), int(viaCluster))
				detour = nb.Dist + dC2Via - dCVia
				if detour < 0 {
					detour = 0
				}
				if detour > r.DetourLimit {
					continue
				}
			}
			eta := e.ETA + nb.Dist/ix.cfg.AvgSpeed
			e.Supported = append(e.Supported, nb.Cluster)
			ix.addSupport(nb.Cluster, supRef{Pt: int32(pi), Detour: detour, ETA: eta}, r)
		}
	}

	// 3. Insert the ride into every supported cluster's lists with the
	// earliest ETA over its supports.
	for c, refs := range r.support {
		ix.clusters[c].add(r.ID, minETA(refs))
	}
}

func (ix *Index) addSupport(c int32, ref supRef, r *Ride) {
	r.support[c] = append(r.support[c], ref)
}

func minETA(refs []supRef) float64 {
	best := math.Inf(1)
	for _, s := range refs {
		if s.ETA < best {
			best = s.ETA
		}
	}
	return best
}

// unregister removes the ride from all cluster lists and clears its
// registration state.
func (ix *Index) unregister(r *Ride) {
	for c := range r.support {
		ix.clusters[c].remove(r.ID)
	}
	r.support = nil
	r.pt = nil
}

// Advance implements ride tracking (§VIII-A): the vehicle has progressed
// to route index pos. Pass-through entries entirely behind pos become
// obsolete; clusters that lose all their valid supports drop the ride
// from their potential lists; clusters with remaining supports get their
// ETA refreshed.
func (ix *Index) Advance(id RideID, pos int) error {
	r, ok := ix.rides[id]
	if !ok {
		return fmt.Errorf("index: ride %d not registered", id)
	}
	if pos < r.Progress {
		return fmt.Errorf("index: ride %d cannot move backwards (%d < %d)", id, pos, r.Progress)
	}
	if pos >= len(r.Route) {
		pos = len(r.Route) - 1
	}
	if pos != r.Progress {
		r.Rev++ // progress invalidates in-flight optimistic bookings
	}
	r.Progress = pos

	// Step 1: mark newly crossed pass-through entries.
	var crossed []int32
	for pi := range r.pt {
		e := &r.pt[pi]
		if !e.Crossed && int(e.LastIdx) < pos {
			e.Crossed = true
			crossed = append(crossed, int32(pi))
		}
	}
	if len(crossed) == 0 {
		return nil
	}
	crossedSet := make(map[int32]bool, len(crossed))
	for _, pi := range crossed {
		crossedSet[pi] = true
	}

	// Step 2: for every cluster supported by a crossed entry, drop the
	// dead supports; if none remain, remove the ride from the cluster's
	// list, otherwise refresh its ETA.
	touched := map[int32]bool{}
	for _, pi := range crossed {
		for _, c := range r.pt[pi].Supported {
			touched[c] = true
		}
	}
	for c := range touched {
		refs := r.support[c]
		kept := refs[:0]
		for _, ref := range refs {
			if !crossedSet[ref.Pt] && !r.pt[ref.Pt].Crossed {
				kept = append(kept, ref)
			}
		}
		if len(kept) == 0 {
			delete(r.support, c)
			ix.clusters[c].remove(r.ID)
		} else {
			r.support[c] = kept
			ix.clusters[c].updateETA(r.ID, minETA(kept))
		}
	}
	// Step 3 (remove crossed entries from the pass-through list) is
	// implicit: entries stay marked Crossed and every path through the
	// index skips them; PassThroughClusters filters them out.
	return nil
}

// PotentialRides appends to dst the ⟨ride, ETA⟩ tuples of cluster c whose
// estimated arrival falls in [t1, t2] and returns the extended slice —
// the O(log n) retrieval step of the optimized search.
func (ix *Index) PotentialRides(c int, t1, t2 float64, dst []RideID) []RideID {
	if c < 0 || c >= len(ix.clusters) {
		return dst
	}
	l := &ix.clusters[c]
	if ix.cfg.LinearWindowScan {
		for _, e := range l.byID {
			if e.ETA >= t1 && e.ETA <= t2 {
				dst = append(dst, e.Ride)
			}
		}
		return dst
	}
	return l.windowIDs(t1, t2, dst)
}

// HasPotentialRide reports whether ride id is in cluster c's potential
// list, with its ETA — the by-ID order lookup used by the two-sided
// intersection.
func (ix *Index) HasPotentialRide(c int, id RideID) (float64, bool) {
	if c < 0 || c >= len(ix.clusters) {
		return 0, false
	}
	return ix.clusters[c].eta(id)
}

// Supports returns the valid ways ride id can serve cluster c, in
// ascending detour order.
func (ix *Index) Supports(id RideID, c int) []Support {
	r, ok := ix.rides[id]
	if !ok {
		return nil
	}
	refs := r.support[int32(c)]
	out := make([]Support, 0, len(refs))
	for _, ref := range refs {
		if r.pt[ref.Pt].Crossed {
			continue
		}
		out = append(out, Support{
			Order:  int(ref.Pt),
			Seg:    int(r.pt[ref.Pt].Seg),
			Detour: ref.Detour,
			ETA:    ref.ETA,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Detour < out[j].Detour })
	return out
}

// ClusterListLen reports the potential-ride count of cluster c
// (diagnostics, memory accounting).
func (ix *Index) ClusterListLen(c int) int {
	if c < 0 || c >= len(ix.clusters) {
		return 0
	}
	return ix.clusters[c].len()
}

// Stats summarizes the index's occupancy — the quantities behind the
// paper's memory experiment (Figure 3c): how many cluster-list entries
// and support records the current fleet induces.
type Stats struct {
	Rides           int
	Clusters        int
	ListEntries     int // Σ per-cluster potential-ride tuples (×2 orders)
	SupportRecords  int // Σ per-ride (cluster → pass-through) refs
	PassThroughRuns int // Σ per-ride pass-through entries
	MaxListLen      int // largest single cluster list
}

// Stats computes current occupancy in O(rides + clusters).
func (ix *Index) Stats() Stats {
	s := Stats{Rides: len(ix.rides), Clusters: len(ix.clusters)}
	for c := range ix.clusters {
		n := ix.clusters[c].len()
		s.ListEntries += n
		if n > s.MaxListLen {
			s.MaxListLen = n
		}
	}
	for _, r := range ix.rides {
		s.PassThroughRuns += len(r.pt)
		for _, refs := range r.support {
			s.SupportRecords += len(refs)
		}
	}
	return s
}

// CheckInvariants validates the cross-structure invariants; tests and
// failure-injection suites call it after random operation sequences.
//
//   - every support ref points at a live (non-crossed) pass-through entry;
//   - a ride appears in a cluster list iff it has ≥1 valid support there;
//   - list ETAs equal the minimum support ETA;
//   - both sort orders contain exactly the same tuples.
func (ix *Index) CheckInvariants() error {
	for c := range ix.clusters {
		l := &ix.clusters[c]
		if len(l.byID) != len(l.byETA) {
			return fmt.Errorf("cluster %d: order sizes differ (%d vs %d)", c, len(l.byID), len(l.byETA))
		}
		for i := 1; i < len(l.byID); i++ {
			if l.byID[i-1].Ride >= l.byID[i].Ride {
				return fmt.Errorf("cluster %d: byID order violated at %d", c, i)
			}
		}
		for i := 1; i < len(l.byETA); i++ {
			if l.byETA[i-1].ETA > l.byETA[i].ETA {
				return fmt.Errorf("cluster %d: byETA order violated at %d", c, i)
			}
		}
		for _, e := range l.byID {
			r, ok := ix.rides[e.Ride]
			if !ok {
				return fmt.Errorf("cluster %d lists unknown ride %d", c, e.Ride)
			}
			refs := r.support[int32(c)]
			if len(refs) == 0 {
				return fmt.Errorf("cluster %d lists ride %d with no supports", c, e.Ride)
			}
			valid := 0
			best := math.Inf(1)
			for _, ref := range refs {
				if int(ref.Pt) >= len(r.pt) {
					return fmt.Errorf("ride %d support ref out of range", e.Ride)
				}
				if !r.pt[ref.Pt].Crossed {
					valid++
				}
				if ref.ETA < best {
					best = ref.ETA
				}
			}
			if valid == 0 {
				return fmt.Errorf("cluster %d lists ride %d with only crossed supports", c, e.Ride)
			}
			if math.Abs(best-e.ETA) > 1e-6 {
				return fmt.Errorf("cluster %d ride %d: listed ETA %v != min support ETA %v", c, e.Ride, e.ETA, best)
			}
		}
	}
	for id, r := range ix.rides {
		for c := range r.support {
			if _, ok := ix.clusters[c].eta(id); !ok {
				return fmt.Errorf("ride %d supports cluster %d but is not listed there", id, c)
			}
		}
	}
	return nil
}

// Inconsistency is one index↔schedule consistency finding: a ride whose
// cluster-list membership disagrees with what its schedule implies (or a
// structural defect of a cluster list itself). Cluster is -1 when the
// finding is not tied to a single cluster.
type Inconsistency struct {
	Ride    RideID
	Cluster int
	Detail  string
}

// Inconsistencies is the collect-all sibling of CheckInvariants: where
// CheckInvariants stops at the first defect (test-time pass/fail), this
// appends every finding to dst and returns it, which is what the online
// auditor needs — a sweep should report the full damage, not the first
// symptom.
func (ix *Index) Inconsistencies(dst []Inconsistency) []Inconsistency {
	for c := range ix.clusters {
		l := &ix.clusters[c]
		if len(l.byID) != len(l.byETA) {
			dst = append(dst, Inconsistency{Cluster: c, Detail: fmt.Sprintf("order sizes differ (%d byID vs %d byETA)", len(l.byID), len(l.byETA))})
		}
		for i := 1; i < len(l.byID); i++ {
			if l.byID[i-1].Ride >= l.byID[i].Ride {
				dst = append(dst, Inconsistency{Ride: l.byID[i].Ride, Cluster: c, Detail: fmt.Sprintf("byID order violated at %d", i)})
			}
		}
		for i := 1; i < len(l.byETA); i++ {
			if l.byETA[i-1].ETA > l.byETA[i].ETA {
				dst = append(dst, Inconsistency{Ride: l.byETA[i].Ride, Cluster: c, Detail: fmt.Sprintf("byETA order violated at %d", i)})
			}
		}
		for _, e := range l.byID {
			r, ok := ix.rides[e.Ride]
			if !ok {
				dst = append(dst, Inconsistency{Ride: e.Ride, Cluster: c, Detail: "listed ride is not registered"})
				continue
			}
			refs := r.support[int32(c)]
			if len(refs) == 0 {
				dst = append(dst, Inconsistency{Ride: e.Ride, Cluster: c, Detail: "listed ride has no supports here"})
				continue
			}
			valid := 0
			best := math.Inf(1)
			for _, ref := range refs {
				if int(ref.Pt) >= len(r.pt) {
					dst = append(dst, Inconsistency{Ride: e.Ride, Cluster: c, Detail: "support ref out of range"})
					continue
				}
				if !r.pt[ref.Pt].Crossed {
					valid++
				}
				if ref.ETA < best {
					best = ref.ETA
				}
			}
			if valid == 0 {
				dst = append(dst, Inconsistency{Ride: e.Ride, Cluster: c, Detail: "listed ride has only crossed supports"})
			}
			if math.Abs(best-e.ETA) > 1e-6 {
				dst = append(dst, Inconsistency{Ride: e.Ride, Cluster: c, Detail: fmt.Sprintf("listed ETA %v != min support ETA %v", e.ETA, best)})
			}
		}
	}
	for id, r := range ix.rides {
		for c := range r.support {
			if _, ok := ix.clusters[c].eta(id); !ok {
				dst = append(dst, Inconsistency{Ride: id, Cluster: int(c), Detail: "ride's schedule supports this cluster but the list omits it"})
			}
		}
	}
	return dst
}

// DropFromClusterList removes ride id from cluster c's potential-ride
// lists while leaving the ride's support records in place — a deliberate
// index↔schedule inconsistency. It exists solely for auditor
// fault-injection drills ("drop a ride from a cluster list behind the
// engine's back"); nothing in the serving path calls it. Reports whether
// the ride was listed.
func (ix *Index) DropFromClusterList(c int, id RideID) bool {
	if c < 0 || c >= len(ix.clusters) {
		return false
	}
	return ix.clusters[c].remove(id)
}
