package index

import (
	"fmt"
	"sync"
	"sync/atomic"

	"xar/internal/discretize"
	"xar/internal/memsize"
)

// DefaultShards is the shard count used when the caller passes 0. Ride
// IDs are sequential, so id mod N stripes the fleet uniformly; 16 shards
// keep write contention negligible up to dozens of cores while the empty
// per-shard cluster arrays stay cheap.
const DefaultShards = 16

// Sharded stripes the ride index across N independently locked shards,
// keyed by ride ID. Each shard is a complete Index (its own ride map and
// cluster posting lists) restricted to the rides assigned to it; the
// O(k²) cluster-neighbor table is built once and shared read-only by
// every shard. A search takes each shard's read lock only while reading
// that shard's posting lists; create/book/cancel/track lock exactly one
// shard — so a booking's shortest-path splice never stalls searches on
// the other N−1 stripes.
//
// Lock ordering: the engine never holds two shard locks at once (every
// operation is single-shard; searches visit shards sequentially or from
// independent workers, one lock each). ID allocation is a lock-free
// atomic counter.
type Sharded struct {
	disc   *discretize.Discretization
	cfg    Config
	shards []Shard
	nextID atomic.Int64
}

// Shard is one lock-striped slice of the ride population. The embedded
// RWMutex guards Ix: callers take RLock for reads (posting-list windows,
// support lookups, ride field reads) and Lock for mutations (insert,
// remove, reregister, advance).
type Shard struct {
	sync.RWMutex
	Ix *Index

	// Pad each shard to its own cache line(s): neighboring shards' locks
	// must not false-share under high core counts.
	_ [32]byte
}

// NewSharded builds an empty sharded index with n shards (n ≤ 0 →
// DefaultShards).
func NewSharded(disc *discretize.Discretization, cfg Config, n int) (*Sharded, error) {
	if cfg.AvgSpeed <= 0 {
		return nil, fmt.Errorf("index: AvgSpeed must be positive, got %v", cfg.AvgSpeed)
	}
	if n <= 0 {
		n = DefaultShards
	}
	neighbors := buildNeighbors(disc)
	s := &Sharded{disc: disc, cfg: cfg, shards: make([]Shard, n)}
	for i := range s.shards {
		s.shards[i].Ix = newWithNeighbors(disc, cfg, neighbors)
	}
	return s, nil
}

// Disc exposes the discretization the index was built over.
func (s *Sharded) Disc() *discretize.Discretization { return s.disc }

// NumShards returns the stripe count.
func (s *Sharded) NumShards() int { return len(s.shards) }

// ShardOf maps a ride ID to its shard number.
func (s *Sharded) ShardOf(id RideID) int {
	return int(uint64(id) % uint64(len(s.shards)))
}

// Shard returns stripe i for direct lock + index access.
func (s *Sharded) Shard(i int) *Shard { return &s.shards[i] }

// ShardFor returns the stripe owning ride id.
func (s *Sharded) ShardFor(id RideID) *Shard { return &s.shards[s.ShardOf(id)] }

// NextID allocates a fresh ride ID (lock-free; IDs are sequential, so a
// serial workload produces the same IDs a single Index would).
func (s *Sharded) NextID() RideID { return RideID(s.nextID.Add(1)) }

// NumRides sums the shard ride counts (each read under the shard's read
// lock; the total is a consistent-enough monitoring number, not a
// linearizable snapshot).
func (s *Sharded) NumRides() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.RLock()
		n += sh.Ix.NumRides()
		sh.RUnlock()
	}
	return n
}

// Snapshot returns a deep copy of ride id (nil if unknown), taken under
// the owning shard's read lock.
func (s *Sharded) Snapshot(id RideID) *Ride {
	sh := s.ShardFor(id)
	sh.RLock()
	defer sh.RUnlock()
	return sh.Ix.Ride(id).Clone()
}

// View returns the read-only aggregate view (memory measurement,
// invariant checking, diagnostics).
func (s *Sharded) View() View { return View{s: s} }

// View is a read-only window over a sharded index. Every method takes
// the shard locks it needs, so a View is safe to use concurrently with
// engine operations — unlike handing out the live *Index, which invited
// unsynchronized mutation. Live deep-size measurement goes through
// MeasureMem (per-shard read locks); the lock-free memsize.Of remains
// quiescent-only.
type View struct {
	s *Sharded
}

// MeasureMem implements memsize.Measurer: each shard's index is walked
// under that shard's read lock, one shard at a time, so measurement is
// safe against concurrent engine mutation and never blocks more than
// one stripe. The discretization the index points at is deliberately
// reached through this walk too — when the engine registers the road
// network and discretization as earlier components, the shared
// accumulator attributes those bytes there and the index share reduces
// to ride state (rides, posting lists, support records).
func (v View) MeasureMem(a *memsize.Accumulator) {
	for i := range v.s.shards {
		sh := &v.s.shards[i]
		sh.RLock()
		a.Add(sh.Ix)
		sh.RUnlock()
	}
}

// NumShards returns the stripe count.
func (v View) NumShards() int { return v.s.NumShards() }

// NumRides returns the active ride count.
func (v View) NumRides() int { return v.s.NumRides() }

// ShardLen returns the ride count of stripe i (the shard-occupancy
// gauge's source).
func (v View) ShardLen(i int) int {
	sh := v.s.Shard(i)
	sh.RLock()
	defer sh.RUnlock()
	return sh.Ix.NumRides()
}

// Rides calls f for every registered ride until f returns false, one
// shard at a time under that shard's read lock. f must treat the ride as
// read-only and must not call back into the index.
func (v View) Rides(f func(*Ride) bool) {
	for i := range v.s.shards {
		sh := &v.s.shards[i]
		sh.RLock()
		stop := false
		sh.Ix.Rides(func(r *Ride) bool {
			if !f(r) {
				stop = true
				return false
			}
			return true
		})
		sh.RUnlock()
		if stop {
			return
		}
	}
}

// Stats merges the per-shard occupancy summaries. Clusters reports the
// discretization's cluster count once (not per shard); MaxListLen is the
// largest posting list of any single shard.
func (v View) Stats() Stats {
	var out Stats
	out.Clusters = v.s.disc.NumClusters()
	for i := range v.s.shards {
		sh := &v.s.shards[i]
		sh.RLock()
		st := sh.Ix.Stats()
		sh.RUnlock()
		out.Rides += st.Rides
		out.ListEntries += st.ListEntries
		out.SupportRecords += st.SupportRecords
		out.PassThroughRuns += st.PassThroughRuns
		if st.MaxListLen > out.MaxListLen {
			out.MaxListLen = st.MaxListLen
		}
	}
	return out
}

// CheckInvariants validates every shard's cross-structure invariants
// plus the sharding invariant itself: each ride is registered in the
// shard its ID maps to.
func (v View) CheckInvariants() error {
	for i := range v.s.shards {
		sh := &v.s.shards[i]
		sh.RLock()
		err := sh.Ix.CheckInvariants()
		if err == nil {
			sh.Ix.Rides(func(r *Ride) bool {
				if v.s.ShardOf(r.ID) != i {
					err = fmt.Errorf("index: ride %d registered in shard %d, belongs to %d", r.ID, i, v.s.ShardOf(r.ID))
					return false
				}
				return true
			})
		}
		sh.RUnlock()
		if err != nil {
			return err
		}
	}
	return nil
}

// AuditShard captures stripe i's audit unit of work under a single
// acquisition of that stripe's read lock: deep clones of every resident
// ride (the auditor's per-ride schedule checks run on these, off-lock)
// plus the collect-all consistency findings of the live structures,
// including the shard-ownership check. One lock hold means the snapshot
// and the findings describe the same instant; separate shards are
// audited at separate instants, which is exactly the consistency the
// engine itself guarantees (no operation spans two shards).
func (v View) AuditShard(i int) (rides []*Ride, incs []Inconsistency) {
	sh := v.s.Shard(i)
	sh.RLock()
	defer sh.RUnlock()
	rides = make([]*Ride, 0, sh.Ix.NumRides())
	sh.Ix.Rides(func(r *Ride) bool {
		rides = append(rides, r.Clone())
		return true
	})
	incs = sh.Ix.Inconsistencies(nil)
	sh.Ix.Rides(func(r *Ride) bool {
		if v.s.ShardOf(r.ID) != i {
			incs = append(incs, Inconsistency{Ride: r.ID, Cluster: -1,
				Detail: fmt.Sprintf("registered in shard %d, belongs to %d", i, v.s.ShardOf(r.ID))})
		}
		return true
	})
	return rides, incs
}
