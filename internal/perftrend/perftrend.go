// Package perftrend is the performance-regression sentinel: it ingests
// every committed BENCH_*.json artifact into one longitudinal
// trajectory (BENCH_trajectory.json, schema xar-bench-trend/v1) of
// per-benchmark series keyed by metric, each with an explicit noise
// band, and gates CI on every observation of every banded series.
//
// The committed BENCH files are point-in-time artifacts — each
// observability PR froze its overhead measurement into one. The bands
// here restate those files' prose budgets ("within 5%", "10x CH
// speedup", "0 mismatches") as machine-checked ranges, sized for the
// shared-VM noise the files document (±15% drift in absolute ns/op
// between batches, which is why the absolute-time bands are loose and
// the on/off ratio bands — measured same-batch — are tight).
//
// A BENCH file whose shape no longer matches an extractor degrades to
// a warning, not a gate failure: the schema tests in bench_schema_test
// own shape compatibility, the sentinel owns the values. Unknown
// BENCH_*.json files likewise warn so a new PR's artifact is noticed
// but never blocks the author before they add an extractor.
package perftrend

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// Schema tags BENCH_trajectory.json so downstream tooling can detect
// incompatible rewrites.
const Schema = "xar-bench-trend/v1"

// Directions a metric can be judged in.
const (
	// LowerBetter metrics (latency, overhead ratios) gate on Max.
	LowerBetter = "lower_better"
	// HigherBetter metrics (speedups, capacity) gate on Min.
	HigherBetter = "higher_better"
	// Exact metrics (correctness counts) gate on Min == Max.
	Exact = "exact"
)

// Point is one observation of a metric: a committed BENCH artifact's
// value, or a fresh smoke-run measurement appended at gate time.
type Point struct {
	// Source is the BENCH file the value came from, or "smoke".
	Source string `json:"source"`
	// Date is the artifact's recorded date (empty for tool-emitted
	// files that carry none).
	Date  string  `json:"date,omitempty"`
	Value float64 `json:"value"`
}

// Series is one tracked metric's trajectory and its acceptance band.
// Every point is judged against the band; nil band edges are unbounded
// on that side.
type Series struct {
	Unit      string   `json:"unit"`
	Direction string   `json:"direction"`
	Min       *float64 `json:"min,omitempty"`
	Max       *float64 `json:"max,omitempty"`
	Points    []Point  `json:"points"`
}

// Trajectory is the BENCH_trajectory.json document.
type Trajectory struct {
	Schema string `json:"schema"`
	// Benchmarks maps benchmark name → metric name → series.
	Benchmarks map[string]map[string]*Series `json:"benchmarks"`
	// Warnings records what the collection could not use: unknown
	// BENCH files (no bands declared for them) and extractors whose
	// path vanished from a known file. Warnings never gate.
	Warnings []string `json:"warnings,omitempty"`
}

// extractor declares one tracked metric: where its value lives in
// which BENCH file, and the band its observations must stay in.
// Several extractors may feed the same (bench, metric) series from
// different files — that is what makes the series longitudinal.
type extractor struct {
	file   string
	bench  string
	metric string
	unit   string
	dir    string
	min    *float64
	max    *float64
	get    func(doc any) (float64, bool)
}

func lim(v float64) *float64 { return &v }

// path returns a getter that walks nested JSON objects by key.
func path(keys ...string) func(any) (float64, bool) {
	return func(doc any) (float64, bool) { return num(doc, keys...) }
}

func num(doc any, keys ...string) (float64, bool) {
	cur := doc
	for _, k := range keys {
		m, ok := cur.(map[string]any)
		if !ok {
			return 0, false
		}
		if cur, ok = m[k]; !ok {
			return 0, false
		}
	}
	f, ok := cur.(float64)
	return f, ok
}

// ratio returns a getter for num(a...)/num(b...) — the same-batch
// on/off overhead ratios the BENCH files judge their budgets on.
func ratio(a, b []string) func(any) (float64, bool) {
	return func(doc any) (float64, bool) {
		x, ok1 := num(doc, a...)
		y, ok2 := num(doc, b...)
		if !ok1 || !ok2 || y == 0 {
			return 0, false
		}
		return x / y, true
	}
}

// steps returns the BENCH_scale.json steps array.
func steps(doc any) []any {
	m, ok := doc.(map[string]any)
	if !ok {
		return nil
	}
	s, _ := m["steps"].([]any)
	return s
}

// extractors is the sentinel's whole knowledge of the committed BENCH
// corpus, in chronological file order so multi-file series read as a
// time line. Band rationale sits next to each band.
var extractors = []extractor{
	// --- BENCH_tracing.json (tracing PR) ---------------------------
	// The headline "search ns/op" series: the instrumented-but-idle
	// search hot path, re-measured by every later PR as its
	// regression check. Absolute time on the shared VM drifts ±15%
	// between batches (the committed points span 2444–3701), so the
	// band is a loose absolute roof, not a tight delta.
	{file: "BENCH_tracing.json", bench: "BenchmarkSearchTelemetry", metric: "off_ns_per_op",
		unit: "ns/op", dir: LowerBetter, max: lim(8000),
		get: path("baseline", "BenchmarkSearchTelemetry/off_ns_per_op")},
	// Production tracing default (head64) must stay within 10% of
	// tracing-off, same-batch.
	{file: "BENCH_tracing.json", bench: "BenchmarkSearchTracing", metric: "head64_overhead_ratio",
		unit: "ratio", dir: LowerBetter, max: lim(1.10),
		get: ratio([]string{"BenchmarkSearchTracing", "head64", "ns_per_op"},
			[]string{"BenchmarkSearchTracing", "off", "ns_per_op"})},

	// --- BENCH_recorder.json (flight-recorder PR) ------------------
	{file: "BENCH_recorder.json", bench: "BenchmarkSearchTelemetry", metric: "off_ns_per_op",
		unit: "ns/op", dir: LowerBetter,
		get: path("regression_check", "BenchmarkSearchTelemetry/off", "ns_per_op")},
	// A recorder snapshotting at 2000x the production cadence must
	// stay within 5% of no-recorder, same-batch.
	{file: "BENCH_recorder.json", bench: "BenchmarkSearchRecorder", metric: "recorder_overhead_ratio",
		unit: "ratio", dir: LowerBetter, max: lim(1.05),
		get: ratio([]string{"BenchmarkSearchRecorder", "on", "ns_per_op"},
			[]string{"BenchmarkSearchRecorder", "off", "ns_per_op"})},

	// --- BENCH_audit.json (journal + auditor PR) -------------------
	{file: "BENCH_audit.json", bench: "BenchmarkSearchTelemetry", metric: "off_ns_per_op",
		unit: "ns/op", dir: LowerBetter,
		get: path("regression_check", "BenchmarkSearchTelemetry/off", "ns_per_op")},
	{file: "BENCH_audit.json", bench: "BenchmarkSearchJournal", metric: "journal_overhead_ratio",
		unit: "ratio", dir: LowerBetter, max: lim(1.15),
		get: ratio([]string{"BenchmarkSearchJournal", "on", "ns_per_op"},
			[]string{"BenchmarkSearchJournal", "off", "ns_per_op"})},
	// The mixed workload journals bookings too (measured +13% on the
	// 1-core VM, prose-attributed to scheduling noise): looser band.
	{file: "BENCH_audit.json", bench: "BenchmarkMixedWorkloadJournal", metric: "journal_overhead_ratio",
		unit: "ratio", dir: LowerBetter, max: lim(1.35),
		get: ratio([]string{"BenchmarkMixedWorkloadJournal", "on", "ns_per_op"},
			[]string{"BenchmarkMixedWorkloadJournal", "off", "ns_per_op"})},
	{file: "BENCH_audit.json", bench: "BenchmarkMixedWorkloadJournal", metric: "audit_overhead_ratio",
		unit: "ratio", dir: LowerBetter, max: lim(1.60),
		get: ratio([]string{"BenchmarkMixedWorkloadJournal", "onAudit", "ns_per_op"},
			[]string{"BenchmarkMixedWorkloadJournal", "on", "ns_per_op"})},

	// --- BENCH_parallel.json (sharded-engine PR) -------------------
	// The unsharded serial engine vs the growth seed's measurement:
	// the one absolute baseline that predates all observability work.
	{file: "BENCH_parallel.json", bench: "BenchmarkSearchThroughput", metric: "serial_ns_per_op",
		unit: "ns/op", dir: LowerBetter, max: lim(1200),
		get: path("go_bench", "serial_regression_check", "BenchmarkSearchThroughput_ns_per_op")},
	{file: "BENCH_parallel.json", bench: "BenchmarkMixedWorkloadParallel", metric: "procs8_ops_per_s",
		unit: "ops/s", dir: HigherBetter, min: lim(30000),
		get: path("go_bench", "BenchmarkMixedWorkloadParallel", "procs8", "ops_per_s")},

	// --- BENCH_ch.json (contraction-hierarchy PR) ------------------
	// The CH routing engine's reason to exist: ≥10x over ALT at the
	// largest benchmarked city (measured 18.5x), exact distances.
	{file: "BENCH_ch.json", bench: "xarbench -ch-bench", metric: "ch_speedup_vs_alt_largest",
		unit: "x", dir: HigherBetter, min: lim(10),
		get: func(doc any) (float64, bool) {
			m, _ := doc.(map[string]any)
			sizes, _ := m["sizes"].([]any)
			if len(sizes) == 0 {
				return 0, false
			}
			return num(sizes[len(sizes)-1], "ch_speedup_vs_alt")
		}},
	{file: "BENCH_ch.json", bench: "xarbench -ch-bench", metric: "distance_mismatches_total",
		unit: "count", dir: Exact, min: lim(0), max: lim(0),
		get: func(doc any) (float64, bool) {
			m, _ := doc.(map[string]any)
			sizes, ok := m["sizes"].([]any)
			if !ok {
				return 0, false
			}
			var total float64
			for _, s := range sizes {
				v, ok := num(s, "distance_mismatches")
				if !ok {
					return 0, false
				}
				total += v
			}
			return total, true
		}},

	// --- BENCH_scale.json (load-harness PR, tool-emitted) ----------
	// Only the lowest-rate step's client p99 is gated — it measures
	// uncontended service latency; the knee steps measure where this
	// hardware saturates and move with it (same rule as load.Gate).
	{file: "BENCH_scale.json", bench: "xarload sweep", metric: "lowest_rate_client_p99_ms",
		unit: "ms", dir: LowerBetter, max: lim(50),
		get: func(doc any) (float64, bool) {
			s := steps(doc)
			if len(s) == 0 {
				return 0, false
			}
			return num(s[0], "client_latency", "p99_ms")
		}},
	{file: "BENCH_scale.json", bench: "xarload sweep", metric: "rides_per_gb_last_step",
		unit: "rides/GB", dir: HigherBetter, min: lim(50000),
		get: func(doc any) (float64, bool) {
			s := steps(doc)
			if len(s) == 0 {
				return 0, false
			}
			return num(s[len(s)-1], "memory", "rides_per_gb")
		}},
	{file: "BENCH_scale.json", bench: "xarload sweep", metric: "harness_errors_total",
		unit: "count", dir: Exact, min: lim(0), max: lim(0),
		get: func(doc any) (float64, bool) {
			s := steps(doc)
			if len(s) == 0 {
				return 0, false
			}
			var total float64
			for _, st := range s {
				v, ok := num(st, "errors")
				if !ok {
					return 0, false
				}
				total += v
			}
			return total, true
		}},

	// --- BENCH_memory.json (memory-accounting PR) ------------------
	{file: "BENCH_memory.json", bench: "BenchmarkSearchTelemetry", metric: "off_ns_per_op",
		unit: "ns/op", dir: LowerBetter,
		get: path("regression_check", "BenchmarkSearchTelemetry/off", "ns_per_op")},
	{file: "BENCH_memory.json", bench: "BenchmarkSearchMemsize", metric: "memsize_overhead_ratio",
		unit: "ratio", dir: LowerBetter, max: lim(1.05),
		get: ratio([]string{"BenchmarkSearchMemsize", "on", "ns_per_op"},
			[]string{"BenchmarkSearchMemsize", "off", "ns_per_op"})},
	{file: "BENCH_memory.json", bench: "memsize coverage", metric: "tracked_coverage_ratio",
		unit: "ratio", dir: HigherBetter, min: lim(0.85),
		get: path("coverage", "tracked_coverage_ratio")},

	// --- BENCH_quality.json (match-quality PR) ---------------------
	{file: "BENCH_quality.json", bench: "BenchmarkSearchTelemetry", metric: "off_ns_per_op",
		unit: "ns/op", dir: LowerBetter,
		get: path("regression_check", "BenchmarkSearchTelemetry/off", "ns_per_op")},
	{file: "BENCH_quality.json", bench: "BenchmarkSearchQuality", metric: "quality_overhead_ratio",
		unit: "ratio", dir: LowerBetter, max: lim(1.05),
		get: ratio([]string{"BenchmarkSearchQuality", "on", "ns_per_op"},
			[]string{"BenchmarkSearchQuality", "off", "ns_per_op"})},
	// The shadow matcher re-runs relaxed searches off the hot path;
	// on the 1-core VM that work has nowhere to hide (measured 1.85x).
	{file: "BENCH_quality.json", bench: "BenchmarkSearchQuality", metric: "shadow_overhead_ratio",
		unit: "ratio", dir: LowerBetter, max: lim(3.5),
		get: ratio([]string{"BenchmarkSearchQuality", "onShadow", "ns_per_op"},
			[]string{"BenchmarkSearchQuality", "on", "ns_per_op"})},

	// --- BENCH_profile.json (continuous-profiling PR) --------------
	{file: "BENCH_profile.json", bench: "BenchmarkSearchTelemetry", metric: "off_ns_per_op",
		unit: "ns/op", dir: LowerBetter,
		get: path("regression_check", "BenchmarkSearchTelemetry/off", "ns_per_op")},
	{file: "BENCH_profile.json", bench: "BenchmarkSearchProfiling", metric: "profiling_overhead_ratio",
		unit: "ratio", dir: LowerBetter, max: lim(1.05),
		get: ratio([]string{"BenchmarkSearchProfiling", "on", "ns_per_op"},
			[]string{"BenchmarkSearchProfiling", "off", "ns_per_op"})},
}

// knownFiles is the set of BENCH files extractors cover.
func knownFiles() map[string]bool {
	m := map[string]bool{}
	for _, e := range extractors {
		m[e.file] = true
	}
	return m
}

// Collect reads dir's BENCH_*.json artifacts through the extractor
// table and assembles the trajectory. Missing files are skipped
// silently (a fresh checkout may predate some artifacts); files whose
// shape defeats an extractor, and BENCH files no extractor knows,
// produce warnings.
func Collect(dir string) (*Trajectory, error) {
	t := &Trajectory{Schema: Schema, Benchmarks: map[string]map[string]*Series{}}

	docs := map[string]any{}
	for _, e := range extractors {
		if _, ok := docs[e.file]; ok {
			continue
		}
		b, err := os.ReadFile(filepath.Join(dir, e.file))
		if os.IsNotExist(err) {
			docs[e.file] = nil
			continue
		} else if err != nil {
			return nil, err
		}
		var doc any
		if err := json.Unmarshal(b, &doc); err != nil {
			return nil, fmt.Errorf("%s: %v", e.file, err)
		}
		docs[e.file] = doc
	}

	for _, e := range extractors {
		doc := docs[e.file]
		if doc == nil {
			continue
		}
		v, ok := e.get(doc)
		if !ok {
			t.Warnings = append(t.Warnings,
				fmt.Sprintf("%s: metric %s/%s not found (shape drift? see bench_schema_test.go)", e.file, e.bench, e.metric))
			continue
		}
		var date string
		if m, ok := doc.(map[string]any); ok {
			date, _ = m["date"].(string)
		}
		s := t.series(e.bench, e.metric)
		if s.Unit == "" {
			s.Unit, s.Direction, s.Min, s.Max = e.unit, e.dir, e.min, e.max
		}
		s.Points = append(s.Points, Point{Source: e.file, Date: date, Value: v})
	}

	// Unknown BENCH artifacts: warn so new files get extractors, but
	// never gate on them (they have no bands).
	known := knownFiles()
	matches, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return nil, err
	}
	sort.Strings(matches)
	for _, m := range matches {
		base := filepath.Base(m)
		if base == "BENCH_trajectory.json" || known[base] {
			continue
		}
		t.Warnings = append(t.Warnings,
			fmt.Sprintf("%s: no extractor declares bands for this artifact; not gated", base))
	}
	return t, nil
}

func (t *Trajectory) series(bench, metric string) *Series {
	byMetric := t.Benchmarks[bench]
	if byMetric == nil {
		byMetric = map[string]*Series{}
		t.Benchmarks[bench] = byMetric
	}
	s := byMetric[metric]
	if s == nil {
		s = &Series{}
		byMetric[metric] = s
	}
	return s
}

// AddPoint appends a fresh observation (typically Source "smoke") to
// an existing series; series the extractor table does not declare are
// created band-less and therefore warn rather than gate.
func (t *Trajectory) AddPoint(bench, metric string, p Point) {
	s := t.series(bench, metric)
	s.Points = append(s.Points, p)
}

// Gate judges every point of every banded series against the series'
// declared absolute band and returns the violations (empty = pass).
// The bands are budgets, not history-relative envelopes, so old points
// are as accountable as the newest: a doctored committed artifact and
// a regressed fresh smoke measurement fail the same way. Band-less
// series never gate.
func (t *Trajectory) Gate() []string {
	var out []string
	benches := make([]string, 0, len(t.Benchmarks))
	for b := range t.Benchmarks {
		benches = append(benches, b)
	}
	sort.Strings(benches)
	for _, b := range benches {
		metrics := make([]string, 0, len(t.Benchmarks[b]))
		for m := range t.Benchmarks[b] {
			metrics = append(metrics, m)
		}
		sort.Strings(metrics)
		for _, m := range metrics {
			s := t.Benchmarks[b][m]
			for _, p := range s.Points {
				if s.Min != nil && p.Value < *s.Min {
					out = append(out, fmt.Sprintf("%s %s = %g %s (from %s) below floor %g",
						b, m, p.Value, s.Unit, p.Source, *s.Min))
				}
				if s.Max != nil && p.Value > *s.Max {
					out = append(out, fmt.Sprintf("%s %s = %g %s (from %s) exceeds budget %g",
						b, m, p.Value, s.Unit, p.Source, *s.Max))
				}
			}
		}
	}
	return out
}
