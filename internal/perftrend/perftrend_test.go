package perftrend

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// repoRoot is where the committed BENCH artifacts live relative to
// this package.
const repoRoot = "../.."

// copyBenches clones the repo's committed BENCH_*.json set into a temp
// dir the test can doctor.
func copyBenches(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	matches, err := filepath.Glob(filepath.Join(repoRoot, "BENCH_*.json"))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no committed BENCH artifacts found: %v", err)
	}
	for _, m := range matches {
		b, err := os.ReadFile(m)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, filepath.Base(m)), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// doctor rewrites one value inside a BENCH file via a mutation over
// its decoded JSON.
func doctor(t *testing.T, dir, file string, mutate func(doc map[string]any)) {
	t.Helper()
	path := filepath.Join(dir, file)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatal(err)
	}
	mutate(doc)
	out, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, out, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestCommittedArtifactsPassGate is the sentinel's own regression
// test: the trajectory built from the repo's committed BENCH set must
// cover every artifact the extractor table declares and pass the gate
// — if it doesn't, either an artifact regressed or a band is wrong,
// and both need a human.
func TestCommittedArtifactsPassGate(t *testing.T) {
	tr, err := Collect(repoRoot)
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.Gate(); len(got) > 0 {
		t.Fatalf("committed BENCH set fails the gate:\n%s", strings.Join(got, "\n"))
	}
	if tr.Schema != Schema {
		t.Fatalf("schema = %q, want %q", tr.Schema, Schema)
	}
	// Every committed artifact must contribute at least one point.
	sources := map[string]bool{}
	for _, byMetric := range tr.Benchmarks {
		for _, s := range byMetric {
			for _, p := range s.Points {
				sources[p.Source] = true
			}
		}
	}
	for _, file := range []string{
		"BENCH_audit.json", "BENCH_ch.json", "BENCH_memory.json",
		"BENCH_parallel.json", "BENCH_profile.json", "BENCH_quality.json",
		"BENCH_recorder.json", "BENCH_scale.json", "BENCH_tracing.json",
	} {
		if !sources[file] {
			t.Errorf("committed artifact %s contributed no points to the trajectory", file)
		}
	}
	// Shape drift in a committed file must have been caught by the
	// schema tests before it got here.
	for _, w := range tr.Warnings {
		if strings.Contains(w, "shape drift") {
			t.Errorf("extractor defeated by committed artifact: %s", w)
		}
	}
	// The headline search series is longitudinal: one point per
	// observability PR that re-measured it.
	s := tr.Benchmarks["BenchmarkSearchTelemetry"]["off_ns_per_op"]
	if s == nil || len(s.Points) < 4 {
		t.Fatalf("headline search ns/op series too short: %+v", s)
	}
}

// TestGateFailsOnSeededRegression doctors committed artifacts with
// regressions the sentinel exists to catch and asserts each one trips
// the gate.
func TestGateFailsOnSeededRegression(t *testing.T) {
	cases := []struct {
		name, file string
		mutate     func(doc map[string]any)
		want       string // substring of the expected violation
	}{
		{
			name: "ch speedup collapse", file: "BENCH_ch.json",
			mutate: func(doc map[string]any) {
				sizes := doc["sizes"].([]any)
				sizes[len(sizes)-1].(map[string]any)["ch_speedup_vs_alt"] = 2.0
			},
			want: "ch_speedup_vs_alt_largest",
		},
		{
			name: "ch distance mismatch", file: "BENCH_ch.json",
			mutate: func(doc map[string]any) {
				doc["sizes"].([]any)[0].(map[string]any)["distance_mismatches"] = 3.0
			},
			want: "distance_mismatches_total",
		},
		{
			name: "memsize overhead blowup", file: "BENCH_memory.json",
			mutate: func(doc map[string]any) {
				b := doc["BenchmarkSearchMemsize"].(map[string]any)
				off := b["off"].(map[string]any)["ns_per_op"].(float64)
				b["on"].(map[string]any)["ns_per_op"] = 2 * off
			},
			want: "memsize_overhead_ratio",
		},
		{
			name: "search hot path regression", file: "BENCH_quality.json",
			mutate: func(doc map[string]any) {
				doc["regression_check"].(map[string]any)["BenchmarkSearchTelemetry/off"].(map[string]any)["ns_per_op"] = 25000.0
			},
			want: "off_ns_per_op",
		},
		{
			name: "rides per GB collapse", file: "BENCH_scale.json",
			mutate: func(doc map[string]any) {
				steps := doc["steps"].([]any)
				steps[len(steps)-1].(map[string]any)["memory"].(map[string]any)["rides_per_gb"] = 100.0
			},
			want: "rides_per_gb_last_step",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := copyBenches(t)
			doctor(t, dir, tc.file, tc.mutate)
			tr, err := Collect(dir)
			if err != nil {
				t.Fatal(err)
			}
			got := tr.Gate()
			if len(got) == 0 {
				t.Fatalf("doctored %s passed the gate", tc.file)
			}
			found := false
			for _, v := range got {
				if strings.Contains(v, tc.want) {
					found = true
				}
			}
			if !found {
				t.Fatalf("violations %v do not mention %q", got, tc.want)
			}
		})
	}
}

// TestSmokePointGatesAgainstBand: an appended fresh observation (the
// -smoke path) is the newest point of its series and is judged by the
// same band; series AddPoint invents are band-less and never gate.
func TestSmokePointGatesAgainstBand(t *testing.T) {
	tr, err := Collect(repoRoot)
	if err != nil {
		t.Fatal(err)
	}
	tr.AddPoint("BenchmarkSearchTelemetry", "off_ns_per_op", Point{Source: "smoke", Value: 3000})
	if got := tr.Gate(); len(got) != 0 {
		t.Fatalf("healthy smoke point tripped the gate: %v", got)
	}
	tr.AddPoint("BenchmarkSearchTelemetry", "off_ns_per_op", Point{Source: "smoke", Value: 9001})
	got := tr.Gate()
	if len(got) != 1 || !strings.Contains(got[0], "smoke") {
		t.Fatalf("regressed smoke point not caught: %v", got)
	}
	tr.AddPoint("SomeNewBench", "whatever_ns", Point{Source: "smoke", Value: 1e12})
	if got := tr.Gate(); len(got) != 1 {
		t.Fatalf("band-less series gated: %v", got)
	}
}

// TestUnknownArtifactWarnsNotGates: a BENCH file no extractor knows
// must surface as a warning, never a gate failure.
func TestUnknownArtifactWarnsNotGates(t *testing.T) {
	dir := copyBenches(t)
	if err := os.WriteFile(filepath.Join(dir, "BENCH_novel.json"), []byte(`{"x":1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	tr, err := Collect(dir)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, w := range tr.Warnings {
		if strings.Contains(w, "BENCH_novel.json") {
			found = true
		}
	}
	if !found {
		t.Fatalf("unknown artifact produced no warning: %v", tr.Warnings)
	}
	if got := tr.Gate(); len(got) != 0 {
		t.Fatalf("unknown artifact tripped the gate: %v", got)
	}
}
