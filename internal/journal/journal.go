// Package journal records ride-lifecycle events into fixed-memory ring
// storage: every ride keeps its most recent events keyed by ride ID, and
// a global tail ring keeps the most recent events across the fleet. The
// journal is the system's flight log of *what happened to each ride* —
// created, matched, booked, spliced, tracked, completed — with trace-ID
// cross-links into the span store, so a timeline answers "why does this
// ride look like this" and a trace answers "why was it slow".
//
// Memory is bounded by construction: at most MaxRides per-ride rings of
// PerRideCapacity events each plus TailCapacity tail slots, all
// overwrite-oldest. Terminal rides (completed) are evicted before live
// ones when the ride table fills, so an active fleet's timelines survive
// a churn of finished rides.
//
// Recording is lock-striped by ride ID and never blocks on consumers;
// the auditor (internal/audit) replays per-ride sequences to verify
// journal causality invariants.
package journal

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"xar/internal/memsize"
	"xar/internal/telemetry"
)

// EventType names one ride-lifecycle transition.
type EventType string

// The ride-lifecycle event types, in rough lifecycle order.
const (
	// Created: the offer was registered and indexed.
	Created EventType = "created"
	// SearchCandidate: the ride surfaced as a match of a (sampled)
	// search. Advisory — emitted only for metrics-sampled searches, so
	// its absence proves nothing.
	SearchCandidate EventType = "search_candidate"
	// MatchRejected: the ride was a candidate of a (sampled) search but a
	// funnel filter eliminated it; Note carries the binding constraint
	// (the funnel stage name). Advisory, like SearchCandidate.
	MatchRejected EventType = "match_rejected"
	// Booked: a rider's booking was confirmed on the ride.
	Booked EventType = "booked"
	// SpliceCommitted: the booking's route splice was applied (new
	// route, via-points, ETAs and budget committed under the shard lock).
	SpliceCommitted EventType = "splice_committed"
	// BookConflictRetried: an optimistic booking commit found the ride
	// mutated and retried.
	BookConflictRetried EventType = "book_conflict_retried"
	// Cancelled: a confirmed booking was cancelled off the ride.
	Cancelled EventType = "cancelled"
	// PickedUp / DroppedOff: tracking advanced the vehicle past a
	// booking's pickup / drop-off via-point.
	PickedUp   EventType = "picked_up"
	DroppedOff EventType = "dropped_off"
	// Completed: the ride finished and left the index. Terminal.
	Completed EventType = "completed"
)

// Types returns all event types (counter registration, query validation).
func Types() []EventType {
	return []EventType{
		Created, SearchCandidate, MatchRejected, Booked, SpliceCommitted,
		BookConflictRetried, Cancelled, PickedUp, DroppedOff, Completed,
	}
}

// KnownType reports whether t is a defined event type.
func KnownType(t EventType) bool {
	for _, k := range Types() {
		if t == k {
			return true
		}
	}
	return false
}

// Event is one journal record. Fields are fixed-size scalars plus two
// short strings, so a ring slot costs well under 100 bytes amortized.
type Event struct {
	// Seq is the journal-global sequence number: a total order over all
	// recorded events, assigned atomically at Record time. Timelines and
	// tails are returned in ascending Seq.
	Seq  uint64    `json:"seq"`
	Type EventType `json:"type"`
	Ride int64     `json:"ride_id"`
	// Unix is the wall-clock record time in seconds. Zero on input is
	// filled in by Record.
	Unix float64 `json:"unix"`
	// TraceID cross-links the event to the span tree of the operation
	// that caused it (GET /v1/traces/{id}), when that operation was
	// trace-recorded.
	TraceID string `json:"trace_id,omitempty"`
	// Value carries the event's principal quantity in meters — the
	// detour limit for created, the exact splice detour for booked /
	// splice_committed, the attempt number for book_conflict_retried,
	// the via ETA for picked_up / dropped_off.
	Value float64 `json:"value,omitempty"`
	// Note is a short free-form annotation ("seats=4", "pu=117 do=349").
	Note string `json:"note,omitempty"`
}

// Sizing defaults.
const (
	DefaultPerRideCapacity = 32
	DefaultMaxRides        = 4096
	DefaultTailCapacity    = 4096
	DefaultStripes         = 8
)

// Config sizes a Journal.
type Config struct {
	// PerRideCapacity is each ride ring's event capacity (0 → 32).
	PerRideCapacity int
	// MaxRides bounds the number of per-ride rings retained across all
	// stripes (0 → 4096). When full, terminal (completed) rides are
	// evicted first, then the oldest ride.
	MaxRides int
	// TailCapacity is the global tail's total capacity (0 → 4096). The
	// tail is striped with the ride table — each stripe retains its
	// share of the most recent events — so Tail approximates "the most
	// recent TailCapacity events fleet-wide" without a global lock.
	TailCapacity int
	// Stripes is the lock-stripe count for the per-ride table (0 → 8).
	Stripes int
	// Registry, when non-nil, registers the xar_ride_events_total{type}
	// counters (one per event type, eagerly, so a fresh process exposes
	// every series at zero).
	Registry *telemetry.Registry
}

// Journal is the ride-lifecycle event log. Safe for concurrent use; a
// nil *Journal is a valid no-op recorder (Record returns immediately).
type Journal struct {
	seq        atomic.Uint64
	perRideCap int
	stripes    []stripe
	counters   map[EventType]*telemetry.Counter
}

// stripe is one lock-striped slice of the per-ride table plus its share
// of the global tail. Recording takes exactly one stripe lock: both the
// ride ring and the tail slot live behind the same mutex, so the hot
// path never funnels every goroutine through a journal-wide lock.
type stripe struct {
	mu    sync.Mutex
	rides map[int64]*rideLog
	order []int64 // first-event order, scanned for eviction
	max   int     // ride capacity of this stripe
	tail  eventRing
}

// rideLog is one ride's fixed-capacity event ring.
type rideLog struct {
	buf      []Event
	next     int
	full     bool // the ring wrapped: oldest events were overwritten
	terminal bool // a Completed event was recorded
}

func (l *rideLog) add(ev Event) {
	l.buf[l.next] = ev
	l.next++
	if l.next == len(l.buf) {
		l.next = 0
		l.full = true
	}
}

// events returns the retained events oldest-first (ring order).
func (l *rideLog) events() []Event {
	if !l.full {
		return append([]Event(nil), l.buf[:l.next]...)
	}
	out := make([]Event, 0, len(l.buf))
	out = append(out, l.buf[l.next:]...)
	out = append(out, l.buf[:l.next]...)
	return out
}

// New builds a journal.
func New(cfg Config) *Journal {
	if cfg.PerRideCapacity <= 0 {
		cfg.PerRideCapacity = DefaultPerRideCapacity
	}
	if cfg.MaxRides <= 0 {
		cfg.MaxRides = DefaultMaxRides
	}
	if cfg.TailCapacity <= 0 {
		cfg.TailCapacity = DefaultTailCapacity
	}
	if cfg.Stripes <= 0 {
		cfg.Stripes = DefaultStripes
	}
	if cfg.Stripes > cfg.MaxRides {
		cfg.Stripes = cfg.MaxRides
	}
	j := &Journal{
		perRideCap: cfg.PerRideCapacity,
		stripes:    make([]stripe, cfg.Stripes),
	}
	per := cfg.MaxRides / cfg.Stripes
	if per < 1 {
		per = 1
	}
	tailPer := cfg.TailCapacity / cfg.Stripes
	if tailPer < 1 {
		tailPer = 1
	}
	for i := range j.stripes {
		j.stripes[i].rides = make(map[int64]*rideLog)
		j.stripes[i].max = per
		j.stripes[i].tail.init(tailPer)
	}
	if cfg.Registry != nil {
		j.counters = make(map[EventType]*telemetry.Counter, len(Types()))
		for _, t := range Types() {
			j.counters[t] = cfg.Registry.Counter("xar_ride_events_total",
				"Ride-lifecycle events recorded by the journal, by event type.",
				telemetry.L("type", string(t)))
		}
	}
	return j
}

// MeasureMem implements memsize.Measurer: the per-ride ring table, the
// eviction order, and the tail ring of each stripe are walked under that
// stripe's mutex — one stripe at a time, so recording on the other
// stripes never stalls. The counters map is immutable after New and
// needs no lock. Nil-receiver-safe like Record.
func (j *Journal) MeasureMem(a *memsize.Accumulator) {
	if j == nil {
		return
	}
	a.Add(j.counters)
	for i := range j.stripes {
		st := &j.stripes[i]
		st.mu.Lock()
		a.Add(st.rides)
		a.Add(st.order)
		a.Add(st.tail.buf)
		st.mu.Unlock()
	}
}

// Record files one event: assigns its sequence number, stamps the wall
// clock when Unix is zero, bumps the type's counter, and appends to the
// ride's ring and the global tail. Nil-receiver-safe — an engine without
// a journal pays one branch.
func (j *Journal) Record(ev Event) {
	if j == nil {
		return
	}
	ev.Seq = j.seq.Add(1)
	if ev.Unix == 0 {
		ev.Unix = float64(time.Now().UnixNano()) / 1e9
	}
	if c := j.counters[ev.Type]; c != nil {
		c.Inc()
	}
	st := &j.stripes[uint64(ev.Ride)%uint64(len(j.stripes))]
	st.mu.Lock()
	l := st.rides[ev.Ride]
	if l == nil {
		if len(st.rides) >= st.max {
			st.evict()
		}
		l = &rideLog{buf: make([]Event, j.perRideCap)}
		st.rides[ev.Ride] = l
		st.order = append(st.order, ev.Ride)
	}
	l.add(ev)
	if ev.Type == Completed {
		l.terminal = true
	}
	st.tail.add(ev)
	st.mu.Unlock()
}

// evict drops one ride log to make room: the oldest terminal ride if any
// (finished rides' timelines are kept only as long as space allows),
// else the oldest ride outright. Called with the stripe lock held.
func (st *stripe) evict() {
	victim := -1
	for i, id := range st.order {
		if l := st.rides[id]; l != nil && l.terminal {
			victim = i
			break
		}
	}
	if victim < 0 {
		victim = 0
	}
	delete(st.rides, st.order[victim])
	st.order = append(st.order[:victim], st.order[victim+1:]...)
}

// Timeline returns the retained events of one ride in ascending sequence
// order, or nil when the ride has no retained events. Nil-receiver-safe.
func (j *Journal) Timeline(ride int64) []Event {
	evs, _ := j.timeline(ride)
	return evs
}

// timeline additionally reports whether the ride's ring wrapped (oldest
// events lost) — the auditor needs that to avoid false "before created"
// causality findings on long-lived rides.
func (j *Journal) timeline(ride int64) ([]Event, bool) {
	if j == nil {
		return nil, false
	}
	st := &j.stripes[uint64(ride)%uint64(len(j.stripes))]
	st.mu.Lock()
	l := st.rides[ride]
	var evs []Event
	wrapped := false
	if l != nil {
		evs = l.events()
		wrapped = l.full
	}
	st.mu.Unlock()
	// Concurrent recorders can interleave between sequence assignment
	// and ring insert, so ring order is only approximately Seq order;
	// the query surface guarantees ascending Seq.
	sort.Slice(evs, func(a, b int) bool { return evs[a].Seq < evs[b].Seq })
	return evs, wrapped
}

// LastTraceID returns the most recent non-empty trace ID in the ride's
// timeline ("" when none) — the cross-link the auditor follows to force
// an offending ride's trace into the error ring.
func (j *Journal) LastTraceID(ride int64) string {
	evs := j.Timeline(ride)
	for i := len(evs) - 1; i >= 0; i-- {
		if evs[i].TraceID != "" {
			return evs[i].TraceID
		}
	}
	return ""
}

// PerRide calls f once per tracked ride with its retained events
// (ascending Seq) and whether the ride's ring wrapped, until f returns
// false. Each stripe's ride set is snapshotted under its lock and f runs
// outside any lock, so f may query the journal. Iteration order is
// unspecified.
func (j *Journal) PerRide(f func(ride int64, events []Event, wrapped bool) bool) {
	if j == nil {
		return
	}
	for si := range j.stripes {
		st := &j.stripes[si]
		st.mu.Lock()
		ids := append([]int64(nil), st.order...)
		st.mu.Unlock()
		for _, id := range ids {
			evs, wrapped := j.timeline(id)
			if evs == nil {
				continue // evicted between snapshot and read
			}
			if !f(id, evs, wrapped) {
				return
			}
		}
	}
}

// TailFilter selects events for Tail.
type TailFilter struct {
	// Type keeps only events of this type ("" = all).
	Type EventType
	// SinceSeq keeps only events with Seq > SinceSeq (poll cursor).
	SinceSeq uint64
	// Limit caps the result to the most recent Limit matching events
	// (0 → 100).
	Limit int
}

const defaultTailLimit = 100

// Tail returns the most recent matching events from the striped tail
// rings, merged and ascending by Seq. Nil-receiver-safe.
func (j *Journal) Tail(f TailFilter) []Event {
	if j == nil {
		return nil
	}
	limit := f.Limit
	if limit <= 0 {
		limit = defaultTailLimit
	}
	var all []Event
	for si := range j.stripes {
		st := &j.stripes[si]
		st.mu.Lock()
		all = st.tail.appendTo(all)
		st.mu.Unlock()
	}
	sort.Slice(all, func(a, b int) bool { return all[a].Seq < all[b].Seq })
	out := make([]Event, 0, limit)
	for _, ev := range all {
		if f.Type != "" && ev.Type != f.Type {
			continue
		}
		if ev.Seq <= f.SinceSeq {
			continue
		}
		out = append(out, ev)
	}
	if len(out) > limit {
		out = out[len(out)-limit:]
	}
	return out
}

// LastSeq returns the highest sequence number assigned so far — the
// cursor a poller passes back as TailFilter.SinceSeq. Nil-receiver-safe.
func (j *Journal) LastSeq() uint64 {
	if j == nil {
		return 0
	}
	return j.seq.Load()
}

// Stats summarizes journal occupancy.
type Stats struct {
	// Rides is the number of per-ride rings currently retained.
	Rides int `json:"rides"`
	// Events is the total number of events ever recorded (== LastSeq).
	Events uint64 `json:"events"`
}

// Stats reports current occupancy. Nil-receiver-safe.
func (j *Journal) Stats() Stats {
	if j == nil {
		return Stats{}
	}
	s := Stats{Events: j.seq.Load()}
	for i := range j.stripes {
		st := &j.stripes[i]
		st.mu.Lock()
		s.Rides += len(st.rides)
		st.mu.Unlock()
	}
	return s
}

// eventRing is one stripe's tail share: a fixed-capacity
// overwrite-oldest buffer of event values. Not self-locking — callers
// hold the owning stripe's mutex.
type eventRing struct {
	buf  []Event
	next int
	full bool
}

func (r *eventRing) init(capacity int) { r.buf = make([]Event, capacity) }

func (r *eventRing) add(ev Event) {
	r.buf[r.next] = ev
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
}

func (r *eventRing) appendTo(out []Event) []Event {
	if !r.full {
		return append(out, r.buf[:r.next]...)
	}
	out = append(out, r.buf[r.next:]...)
	return append(out, r.buf[:r.next]...)
}
