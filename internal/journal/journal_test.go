package journal

import (
	"fmt"
	"sync"
	"testing"

	"xar/internal/telemetry"
)

func TestRecordAndTimeline(t *testing.T) {
	j := New(Config{})
	j.Record(Event{Type: Created, Ride: 7, Value: 2000})
	j.Record(Event{Type: Booked, Ride: 7, TraceID: "aa"})
	j.Record(Event{Type: Booked, Ride: 9})

	evs := j.Timeline(7)
	if len(evs) != 2 {
		t.Fatalf("timeline(7) = %d events, want 2", len(evs))
	}
	if evs[0].Type != Created || evs[1].Type != Booked {
		t.Fatalf("timeline(7) types = %v, %v", evs[0].Type, evs[1].Type)
	}
	if evs[0].Seq >= evs[1].Seq {
		t.Fatalf("seqs not ascending: %d, %d", evs[0].Seq, evs[1].Seq)
	}
	if evs[0].Unix == 0 {
		t.Fatal("Record did not stamp Unix")
	}
	if j.Timeline(8) != nil {
		t.Fatal("timeline of unknown ride should be nil")
	}
	if got := j.LastTraceID(7); got != "aa" {
		t.Fatalf("LastTraceID(7) = %q, want aa", got)
	}
	if got := j.LastTraceID(9); got != "" {
		t.Fatalf("LastTraceID(9) = %q, want empty", got)
	}
	if st := j.Stats(); st.Rides != 2 || st.Events != 3 {
		t.Fatalf("Stats = %+v, want 2 rides / 3 events", st)
	}
}

func TestNilJournalIsNoOp(t *testing.T) {
	var j *Journal
	j.Record(Event{Type: Created, Ride: 1}) // must not panic
	if j.Timeline(1) != nil || j.Tail(TailFilter{}) != nil || j.LastSeq() != 0 {
		t.Fatal("nil journal should read as empty")
	}
	j.PerRide(func(int64, []Event, bool) bool { t.Fatal("nil PerRide must not call f"); return false })
}

func TestPerRideRingWraparound(t *testing.T) {
	j := New(Config{PerRideCapacity: 4})
	for i := 0; i < 10; i++ {
		j.Record(Event{Type: BookConflictRetried, Ride: 1, Value: float64(i)})
	}
	evs := j.Timeline(1)
	if len(evs) != 4 {
		t.Fatalf("wrapped timeline has %d events, want 4", len(evs))
	}
	// Oldest events overwritten: only values 6..9 survive, in order.
	for i, ev := range evs {
		if ev.Value != float64(6+i) {
			t.Fatalf("evs[%d].Value = %v, want %d", i, ev.Value, 6+i)
		}
	}
	wrapped := false
	j.PerRide(func(ride int64, _ []Event, w bool) bool {
		if ride == 1 {
			wrapped = w
		}
		return true
	})
	if !wrapped {
		t.Fatal("PerRide should report the ring as wrapped")
	}
}

func TestEvictionPrefersTerminalRides(t *testing.T) {
	// One stripe so capacity bounds are deterministic.
	j := New(Config{MaxRides: 3, Stripes: 1})
	j.Record(Event{Type: Created, Ride: 1})
	j.Record(Event{Type: Created, Ride: 2})
	j.Record(Event{Type: Completed, Ride: 2}) // ride 2 is terminal
	j.Record(Event{Type: Created, Ride: 3})

	// Retention after completion: the finished ride's timeline is still
	// queryable while space allows.
	if j.Timeline(2) == nil {
		t.Fatal("completed ride's timeline should be retained")
	}

	// Table is full; a new ride must evict terminal ride 2, not live 1.
	j.Record(Event{Type: Created, Ride: 4})
	if j.Timeline(2) != nil {
		t.Fatal("terminal ride should be evicted first")
	}
	for _, id := range []int64{1, 3, 4} {
		if j.Timeline(id) == nil {
			t.Fatalf("live ride %d should survive eviction", id)
		}
	}

	// No terminal rides left: the oldest live ride goes.
	j.Record(Event{Type: Created, Ride: 5})
	if j.Timeline(1) != nil {
		t.Fatal("oldest live ride should be evicted when no terminal candidates exist")
	}
}

func TestTailFilters(t *testing.T) {
	j := New(Config{})
	for i := 0; i < 5; i++ {
		j.Record(Event{Type: Created, Ride: int64(i)})
		j.Record(Event{Type: Booked, Ride: int64(i)})
	}
	if got := len(j.Tail(TailFilter{})); got != 10 {
		t.Fatalf("unfiltered tail = %d events, want 10", got)
	}
	booked := j.Tail(TailFilter{Type: Booked})
	if len(booked) != 5 {
		t.Fatalf("type filter kept %d events, want 5", len(booked))
	}
	for _, ev := range booked {
		if ev.Type != Booked {
			t.Fatalf("type filter leaked %v", ev.Type)
		}
	}
	cursor := booked[2].Seq
	after := j.Tail(TailFilter{SinceSeq: cursor})
	for _, ev := range after {
		if ev.Seq <= cursor {
			t.Fatalf("since filter leaked seq %d ≤ %d", ev.Seq, cursor)
		}
	}
	if lim := j.Tail(TailFilter{Limit: 3}); len(lim) != 3 {
		t.Fatalf("limit kept %d events, want 3", len(lim))
	} else if lim[2].Seq != j.LastSeq() {
		t.Fatal("limit should keep the most recent events")
	}
	// Ascending seq everywhere.
	all := j.Tail(TailFilter{})
	for i := 1; i < len(all); i++ {
		if all[i-1].Seq >= all[i].Seq {
			t.Fatalf("tail not seq-ascending at %d", i)
		}
	}
}

func TestTailRingWraparound(t *testing.T) {
	// One stripe so the tail is a single ring with exact retention.
	j := New(Config{TailCapacity: 8, Stripes: 1})
	for i := 0; i < 20; i++ {
		j.Record(Event{Type: Created, Ride: int64(i)})
	}
	all := j.Tail(TailFilter{})
	if len(all) != 8 {
		t.Fatalf("tail retains %d events, want 8", len(all))
	}
	if all[0].Seq != 13 || all[7].Seq != 20 {
		t.Fatalf("tail seq range [%d,%d], want [13,20]", all[0].Seq, all[7].Seq)
	}
}

func TestCounters(t *testing.T) {
	reg := telemetry.NewRegistry()
	j := New(Config{Registry: reg})
	j.Record(Event{Type: Created, Ride: 1})
	j.Record(Event{Type: Booked, Ride: 1})
	j.Record(Event{Type: Booked, Ride: 1})

	got := map[string]float64{}
	for _, fam := range reg.Snapshot() {
		if fam.Name != "xar_ride_events_total" {
			continue
		}
		for _, s := range fam.Series {
			if s.Value != nil {
				got[s.Labels["type"]] = *s.Value
			}
		}
	}
	// Eager registration: every type present, even at zero.
	if len(got) != len(Types()) {
		t.Fatalf("exposed %d type series, want %d: %v", len(got), len(Types()), got)
	}
	if got["created"] != 1 || got["booked"] != 2 || got["completed"] != 0 {
		t.Fatalf("counter values wrong: %v", got)
	}
}

func TestKnownType(t *testing.T) {
	for _, typ := range Types() {
		if !KnownType(typ) {
			t.Fatalf("KnownType(%q) = false", typ)
		}
	}
	if KnownType("teleported") {
		t.Fatal(`KnownType("teleported") = true`)
	}
}

// TestConcurrentRecorders hammers the journal from 8 goroutines (run
// under -race) and checks the query-surface ordering guarantees:
// timelines and tails are strictly seq-ascending with no duplicates.
func TestConcurrentRecorders(t *testing.T) {
	j := New(Config{PerRideCapacity: 64, MaxRides: 64, Stripes: 4})
	const goroutines = 8
	const perG = 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				ride := int64(i % 16)
				j.Record(Event{Type: Booked, Ride: ride, Note: fmt.Sprintf("g%d", g)})
				if i%7 == 0 {
					j.Timeline(ride)
					j.Tail(TailFilter{Limit: 10})
				}
			}
		}(g)
	}
	wg.Wait()

	if j.LastSeq() != goroutines*perG {
		t.Fatalf("LastSeq = %d, want %d", j.LastSeq(), goroutines*perG)
	}
	seen := 0
	j.PerRide(func(ride int64, evs []Event, _ bool) bool {
		seen++
		for i := 1; i < len(evs); i++ {
			if evs[i-1].Seq >= evs[i].Seq {
				t.Fatalf("ride %d timeline not strictly seq-ascending at %d (%d, %d)",
					ride, i, evs[i-1].Seq, evs[i].Seq)
			}
		}
		return true
	})
	if seen != 16 {
		t.Fatalf("PerRide visited %d rides, want 16", seen)
	}
	tail := j.Tail(TailFilter{Limit: 10000})
	for i := 1; i < len(tail); i++ {
		if tail[i-1].Seq >= tail[i].Seq {
			t.Fatalf("tail not strictly seq-ascending at %d", i)
		}
	}
}
