package quality

import (
	"strings"
	"sync"
	"testing"

	"xar/internal/telemetry"
)

func TestStageNamesComplete(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < NumStages; i++ {
		n := StageName(i)
		if n == "" {
			t.Fatalf("stage %d has no name", i)
		}
		if seen[n] {
			t.Fatalf("duplicate stage name %q", n)
		}
		seen[n] = true
	}
	if StageName(-1) != "" || StageName(NumStages) != "" {
		t.Fatal("out-of-range stage must name to empty")
	}
	if len(Stages()) != NumStages {
		t.Fatalf("Stages() returned %d names", len(Stages()))
	}
}

func TestNilCollectorIsNoOp(t *testing.T) {
	var c *Collector
	c.AddFunnel(&[NumStages]uint64{1, 2, 3}, 6)
	c.ObserveSlack(0.5)
	c.ObserveEpsilonConsumption(0.5)
	c.Unlock(ConstraintCapacity)
	c.ShadowTask(TaskNoMatch)
	c.ShadowDropped()
	c.ObserveRegret(10, true)
	c.SetShadowEnabled(true)
	if c.Examined() != 0 || c.FunnelTotal(Matched) != 0 || c.UnlockTotal(ConstraintCapacity) != 0 {
		t.Fatal("nil collector reported non-zero")
	}
	s := c.Snapshot()
	if s.Funnel == nil || s.Shadow.Unlocks == nil {
		t.Fatal("nil collector snapshot must have non-nil maps")
	}
	if _, _, stable := c.AccountingGap(); !stable {
		t.Fatal("nil collector gap must be stable")
	}
}

func TestFunnelAccumulationAndExposition(t *testing.T) {
	reg := telemetry.NewRegistry()
	c := New(reg)

	// Eager registration: every stage and constraint present at zero.
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	for _, st := range Stages() {
		if !strings.Contains(b.String(), `xar_search_funnel_total{stage="`+st+`"} 0`) {
			t.Fatalf("fresh exposition missing stage %q:\n%s", st, b.String())
		}
	}
	for _, con := range Constraints() {
		if !strings.Contains(b.String(), `xar_shadow_unlock_total{constraint="`+con+`"} 0`) {
			t.Fatalf("fresh exposition missing constraint %q", con)
		}
	}

	counts := [NumStages]uint64{}
	counts[WindowMiss] = 3
	counts[Capacity] = 1
	counts[Matched] = 2
	c.AddFunnel(&counts, 6)
	c.AddFunnel(&[NumStages]uint64{}, 0) // all-zero: no examined growth

	if got := c.Examined(); got != 6 {
		t.Fatalf("examined = %d, want 6", got)
	}
	if got := c.FunnelTotal(WindowMiss); got != 3 {
		t.Fatalf("window_miss = %d", got)
	}
	if got := c.FunnelTotal(Matched); got != 2 {
		t.Fatalf("matched = %d", got)
	}
	ex, sum, stable := c.AccountingGap()
	if !stable || ex != 6 || sum != 6 {
		t.Fatalf("gap = (%d, %d, %v), want (6, 6, true)", ex, sum, stable)
	}

	s := c.Snapshot()
	if s.CandidatesExamined != 6 || s.Funnel["window_miss"] != 3 || s.Funnel["matched"] != 2 {
		t.Fatalf("snapshot funnel wrong: %+v", s)
	}
}

func TestSlackAndEpsilonSummaries(t *testing.T) {
	c := New(nil) // private registry: cost without exposition
	for _, v := range []float64{0.1, 0.2, 0.3, 0.9} {
		c.ObserveSlack(v)
	}
	c.ObserveEpsilonConsumption(0.05)
	s := c.Snapshot()
	if s.DetourSlack.Count != 4 {
		t.Fatalf("slack count = %d", s.DetourSlack.Count)
	}
	if s.DetourSlack.Mean < 0.3 || s.DetourSlack.Mean > 0.45 {
		t.Fatalf("slack mean = %v", s.DetourSlack.Mean)
	}
	if s.DetourSlack.P99 < s.DetourSlack.P50 {
		t.Fatalf("p99 %v < p50 %v", s.DetourSlack.P99, s.DetourSlack.P50)
	}
	if s.EpsilonConsumption.Count != 1 {
		t.Fatalf("epsilon count = %d", s.EpsilonConsumption.Count)
	}
}

func TestShadowStats(t *testing.T) {
	c := New(nil)
	c.SetShadowEnabled(true)
	c.Unlock(ConstraintCapacity)
	c.Unlock(ConstraintCapacity)
	c.Unlock(ConstraintNone)
	c.Unlock("bogus") // ignored
	c.ShadowTask(TaskNoMatch)
	c.ShadowTask(TaskRegret)
	c.ShadowDropped()
	c.ObserveRegret(100, true)
	c.ObserveRegret(300, true)
	c.ObserveRegret(0, true)    // rematched, no better alternative
	c.ObserveRegret(999, false) // nothing found: regret unmeasurable

	if got := c.UnlockTotal(ConstraintCapacity); got != 2 {
		t.Fatalf("capacity unlocks = %d", got)
	}
	s := c.Snapshot()
	if !s.Shadow.Enabled {
		t.Fatal("enabled flag lost")
	}
	if s.Shadow.Unlocks[ConstraintCapacity] != 2 || s.Shadow.Unlocks[ConstraintNone] != 1 {
		t.Fatalf("unlocks = %v", s.Shadow.Unlocks)
	}
	if s.Shadow.Tasks[TaskNoMatch] != 1 || s.Shadow.Tasks[TaskRegret] != 1 || s.Shadow.Dropped != 1 {
		t.Fatalf("tasks = %v dropped = %d", s.Shadow.Tasks, s.Shadow.Dropped)
	}
	r := s.Shadow.Regret
	if r.Bookings != 4 || r.Rematched != 3 || r.WithRegret != 2 {
		t.Fatalf("regret counts = %+v", r)
	}
	if r.MeanM != 200 || r.MaxM != 300 {
		t.Fatalf("regret mean/max = %v/%v", r.MeanM, r.MaxM)
	}
}

// TestConcurrentAddFunnel is the collector-level half of the funnel
// accounting -race check: concurrent AddFunnel calls must converge to an
// exact examined == stage-sum identity once quiescent.
func TestConcurrentAddFunnel(t *testing.T) {
	c := New(nil)
	const goroutines, perG = 8, 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				counts := [NumStages]uint64{}
				counts[(g+i)%NumStages] = uint64(1 + i%3)
				counts[(g+i+1)%NumStages] = 1
				c.AddFunnel(&counts, counts[(g+i)%NumStages]+1)
			}
		}(g)
	}
	wg.Wait()
	ex, sum, stable := c.AccountingGap()
	if !stable {
		t.Fatal("quiescent collector read unstable")
	}
	if ex != sum {
		t.Fatalf("examined %d != classified %d", ex, sum)
	}
	if ex == 0 {
		t.Fatal("nothing recorded")
	}
}
