// Package quality collects match-quality telemetry: the candidate
// rejection funnel of the two-step search (§VII), approximation-gap
// histograms against the Theorem 6 detour bound, and the shadow
// counterfactual matcher's constraint-attribution and greedy-regret
// statistics. The package is deliberately engine-free — internal/core
// feeds a Collector, internal/server and the cmd tools read snapshots —
// so the dependency arrow points one way and the collector can be unit
// tested without a world.
//
// Everything is fixed-memory and lock-free on the paths the engine
// touches: funnel accounting is a handful of atomic adds per search
// (batched per search, not per candidate), and the histograms are the
// same atomic-bucket telemetry.Histogram the op timers use. The shadow
// matcher's lower-rate statistics (regret mean/max) sit behind a mutex.
package quality

import (
	"sync"
	"sync/atomic"

	"xar/internal/memsize"
	"xar/internal/telemetry"
)

// Funnel stage indices. Every candidate ride a search examines (the
// source-side survivors of step 1) is classified into exactly one stage:
// the first filter that eliminated it, or Matched. The order mirrors the
// filter chain in internal/core/search.go.
const (
	// WindowMiss: in the source departure window but not the extended
	// destination window (step 2 intersection), or the posting was stale.
	WindowMiss = iota
	// WalkLimit: no (source, dest) cluster pair fits the requester's
	// combined walking limit (bestWalkPair found nothing).
	WalkLimit
	// Capacity: the ride had no seat left.
	Capacity
	// DetourBound: an order-feasible support pair exists, but every one
	// exceeds the ride's remaining detour budget.
	DetourBound
	// OrderInfeasible: no support pair visits the pickup cluster before
	// the drop-off cluster (wrong direction / vehicle already past).
	OrderInfeasible
	// Matched: the candidate survived every filter.
	Matched

	// NumStages sizes per-search funnel count arrays.
	NumStages
)

var stageNames = [NumStages]string{
	WindowMiss:      "window_miss",
	WalkLimit:       "walk_limit",
	Capacity:        "capacity",
	DetourBound:     "detour_bound",
	OrderInfeasible: "order_infeasible",
	Matched:         "matched",
}

// StageName returns the label value of a funnel stage index
// (xar_search_funnel_total{stage=...}); "" for out-of-range.
func StageName(i int) string {
	if i < 0 || i >= NumStages {
		return ""
	}
	return stageNames[i]
}

// Stages returns all funnel stage names in classification order.
func Stages() []string { return append([]string(nil), stageNames[:]...) }

// Shadow-matcher constraint labels (xar_shadow_unlock_total{constraint}):
// for a sampled no-match request, each single-constraint relaxation that
// produces at least one match counts an unlock of that constraint.
// ConstraintNone counts requests no single relaxation unlocked (multiple
// binding constraints, or genuinely unservable corridors).
const (
	ConstraintWalk     = "walk_limit"
	ConstraintWindow   = "window"
	ConstraintCapacity = "capacity"
	ConstraintDetour   = "detour_bound"
	ConstraintOrder    = "order_infeasible"
	ConstraintNone     = "none"
)

var constraintNames = []string{
	ConstraintWalk, ConstraintWindow, ConstraintCapacity,
	ConstraintDetour, ConstraintOrder, ConstraintNone,
}

// Constraints returns every unlock label the shadow matcher can emit.
func Constraints() []string { return append([]string(nil), constraintNames...) }

// Shadow task kinds (xar_shadow_tasks_total{kind}).
const (
	TaskNoMatch = "no_match"
	TaskRegret  = "regret"
)

// RatioBuckets are the histogram bounds for the dimensionless ratio
// series (xar_detour_slack_ratio, xar_epsilon_consumption_ratio): dense
// around the interesting [0, 1] consumption range with a short tail past
// 1 to catch bound violations (which the auditor would also flag).
func RatioBuckets() []float64 {
	return []float64{0.01, 0.025, 0.05, 0.1, 0.15, 0.2, 0.3, 0.4,
		0.5, 0.6, 0.7, 0.8, 0.9, 1.0, 1.1, 1.25, 1.5, 2}
}

// Collector accumulates match-quality statistics and mirrors them into a
// telemetry registry. Safe for concurrent use; a nil *Collector is a
// valid no-op for every method.
type Collector struct {
	// funnel/examined: the atomic twins of the Prometheus counters, read
	// by Snapshot and the auditor without a scrape. AddFunnel orders the
	// writes stages-first, examined-last, so a stable read of examined
	// can never exceed the stage sum (see AccountingGap).
	funnel   [NumStages]atomic.Uint64
	examined atomic.Uint64

	funnelCounters [NumStages]*telemetry.Counter
	slack          *telemetry.Histogram
	epsConsumption *telemetry.Histogram

	unlocks        []atomic.Uint64
	unlockCounters []*telemetry.Counter
	unlockIdx      map[string]int

	taskNoMatch   *telemetry.Counter
	taskRegret    *telemetry.Counter
	droppedTasks  *telemetry.Counter
	shadowEnabled atomic.Bool

	// Regret statistics are low-rate (one update per sampled booking,
	// off the request path), so a mutex beats float-CAS contortions.
	mu            sync.Mutex
	regretTasks   uint64
	regretHits    uint64 // tasks where a strictly better alternative existed
	regretSum     float64
	regretMax     float64
	regretChecked uint64 // tasks where the shadow re-search found any match
}

// MeasureMem implements memsize.Measurer with a bare lock-free walk:
// every Collector pointer, slice, and map field is immutable after New
// (the walker follows structure, not the atomically-mutated scalar
// values), so no lock is needed. Nil-receiver-safe.
func (c *Collector) MeasureMem(a *memsize.Accumulator) {
	if c == nil {
		return
	}
	a.Add(c)
}

// New builds a Collector registered into reg. A nil reg records into a
// private, unexposed registry — identical cost, nothing scraped — so
// callers that only want Snapshot need no registry plumbing.
func New(reg *telemetry.Registry) *Collector {
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	c := &Collector{
		unlocks:   make([]atomic.Uint64, len(constraintNames)),
		unlockIdx: make(map[string]int, len(constraintNames)),
	}
	// Eager registration: a fresh process exposes every funnel stage and
	// unlock constraint at zero, the same contract as the journal's
	// per-type event counters.
	for i := 0; i < NumStages; i++ {
		c.funnelCounters[i] = reg.Counter("xar_search_funnel_total",
			"Candidate rides examined by search, by the funnel stage that eliminated them (or matched).",
			telemetry.L("stage", stageNames[i]))
	}
	c.slack = reg.Histogram("xar_detour_slack_ratio",
		"Realized booking detour as a fraction of the Theorem 6 limit (remaining budget + 4ε).",
		RatioBuckets(), nil)
	c.epsConsumption = reg.Histogram("xar_epsilon_consumption_ratio",
		"Per-pickup approximation error (actual − estimated detour) as a fraction of the 4ε allowance.",
		RatioBuckets(), nil)
	for i, name := range constraintNames {
		c.unlockIdx[name] = i
		c.unlockCounters = append(c.unlockCounters, reg.Counter("xar_shadow_unlock_total",
			"Sampled no-match requests the shadow matcher unlocked by relaxing one constraint.",
			telemetry.L("constraint", name)))
	}
	c.taskNoMatch = reg.Counter("xar_shadow_tasks_total",
		"Shadow counterfactual tasks processed, by kind.", telemetry.L("kind", TaskNoMatch))
	c.taskRegret = reg.Counter("xar_shadow_tasks_total",
		"Shadow counterfactual tasks processed, by kind.", telemetry.L("kind", TaskRegret))
	c.droppedTasks = reg.Counter("xar_shadow_dropped_total",
		"Shadow tasks dropped because the bounded queue was full (the request path never blocks).", nil)
	return c
}

// AddFunnel folds one search's per-stage candidate counts in: stage
// counters first, the examined total last (the ordering AccountingGap
// relies on). examined is counted *independently* by the caller (the
// engine uses the candidate-set size, not the stage sum), which is what
// makes the auditor's funnel_accounting invariant a genuine cross-check
// of the classification logic rather than a tautology. Nil-safe; zero
// stages cost nothing.
func (c *Collector) AddFunnel(counts *[NumStages]uint64, examined uint64) {
	if c == nil {
		return
	}
	for i, n := range counts {
		if n == 0 {
			continue
		}
		c.funnel[i].Add(n)
		c.funnelCounters[i].Add(n)
	}
	if examined > 0 {
		c.examined.Add(examined)
	}
}

// FunnelTotal returns the cumulative count of one stage. Nil-safe.
func (c *Collector) FunnelTotal(stage int) uint64 {
	if c == nil || stage < 0 || stage >= NumStages {
		return 0
	}
	return c.funnel[stage].Load()
}

// Examined returns the cumulative candidates examined (the funnel's
// stage sum, maintained as its own atomic). Nil-safe.
func (c *Collector) Examined() uint64 {
	if c == nil {
		return 0
	}
	return c.examined.Load()
}

// AccountingGap supports the auditor's funnel_accounting invariant: it
// reads examined, sums the stage counters, and re-reads examined. When
// the two examined reads agree (stable=true) the stage sum can only be
// ≥ examined — AddFunnel writes stages before examined — so classified <
// examined under a stable read proves a candidate was examined but never
// classified. Unstable reads mean searches were in flight; retry.
func (c *Collector) AccountingGap() (examined, classified uint64, stable bool) {
	if c == nil {
		return 0, 0, true
	}
	e1 := c.examined.Load()
	var sum uint64
	for i := range c.funnel {
		sum += c.funnel[i].Load()
	}
	e2 := c.examined.Load()
	return e1, sum, e1 == e2
}

// ObserveSlack records one booking's realized detour as a fraction of
// its Theorem 6 limit. Nil-safe.
func (c *Collector) ObserveSlack(ratio float64) {
	if c == nil {
		return
	}
	c.slack.Observe(ratio)
}

// ObserveEpsilonConsumption records one booking's approximation error as
// a fraction of the 4ε allowance. Nil-safe.
func (c *Collector) ObserveEpsilonConsumption(ratio float64) {
	if c == nil {
		return
	}
	c.epsConsumption.Observe(ratio)
}

// SetShadowEnabled records whether a shadow matcher feeds this
// collector (surfaced in snapshots so /v1/quality distinguishes "zero
// because disabled" from "zero because nothing unlocked"). Nil-safe.
func (c *Collector) SetShadowEnabled(on bool) {
	if c == nil {
		return
	}
	c.shadowEnabled.Store(on)
}

// Unlock counts one constraint unlock from a shadowed no-match request.
// Unknown constraint names are ignored. Nil-safe.
func (c *Collector) Unlock(constraint string) {
	if c == nil {
		return
	}
	i, ok := c.unlockIdx[constraint]
	if !ok {
		return
	}
	c.unlocks[i].Add(1)
	c.unlockCounters[i].Inc()
}

// UnlockTotal returns the cumulative unlocks of one constraint. Nil-safe.
func (c *Collector) UnlockTotal(constraint string) uint64 {
	if c == nil {
		return 0
	}
	i, ok := c.unlockIdx[constraint]
	if !ok {
		return 0
	}
	return c.unlocks[i].Load()
}

// ShadowTask counts one processed shadow task by kind. Nil-safe.
func (c *Collector) ShadowTask(kind string) {
	if c == nil {
		return
	}
	switch kind {
	case TaskNoMatch:
		c.taskNoMatch.Inc()
	case TaskRegret:
		c.taskRegret.Inc()
	}
}

// ShadowDropped counts one shadow task dropped at the full queue. Nil-safe.
func (c *Collector) ShadowDropped() {
	if c == nil {
		return
	}
	c.droppedTasks.Inc()
}

// ObserveRegret records one booked request's greedy regret: the booked
// match's total walk minus the best alternative's, in meters (clamped at
// zero by the caller), with found reporting whether the shadow re-search
// produced any candidate at all. Nil-safe.
func (c *Collector) ObserveRegret(meters float64, found bool) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.regretTasks++
	if found {
		c.regretChecked++
		if meters > 0 {
			c.regretHits++
			c.regretSum += meters
			if meters > c.regretMax {
				c.regretMax = meters
			}
		}
	}
	c.mu.Unlock()
}

// HistogramSummary is the JSON shape of one ratio histogram in a
// quality snapshot.
type HistogramSummary struct {
	Count uint64  `json:"count"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
}

func summarize(h *telemetry.Histogram) HistogramSummary {
	s := HistogramSummary{Count: h.Count()}
	if s.Count == 0 {
		return s
	}
	s.Mean = h.Sum() / float64(s.Count)
	s.P50 = h.Quantile(0.50)
	s.P90 = h.Quantile(0.90)
	s.P99 = h.Quantile(0.99)
	return s
}

// RegretStats summarizes the shadow matcher's greedy-regret measurements.
type RegretStats struct {
	// Bookings is the number of sampled bookings re-evaluated.
	Bookings uint64 `json:"bookings"`
	// Rematched is how many of those re-searches found any candidate
	// (the counterfactual runs after the booking mutated the ride, so
	// some find nothing).
	Rematched uint64 `json:"rematched"`
	// WithRegret is how many found a strictly better alternative.
	WithRegret uint64 `json:"with_regret"`
	// MeanM/MaxM summarize the regret in meters over WithRegret tasks.
	MeanM float64 `json:"mean_m"`
	MaxM  float64 `json:"max_m"`
}

// ShadowSnapshot is the shadow-matcher section of a quality snapshot.
type ShadowSnapshot struct {
	Enabled bool              `json:"enabled"`
	Tasks   map[string]uint64 `json:"tasks"`
	Dropped uint64            `json:"dropped"`
	Unlocks map[string]uint64 `json:"unlocks"`
	Regret  RegretStats       `json:"regret"`
}

// Snapshot is the full quality picture: the GET /v1/quality body and the
// quality.json debug-bundle section.
type Snapshot struct {
	// Funnel maps stage name → cumulative candidates, CandidatesExamined
	// their sum (every examined candidate classified exactly once).
	Funnel             map[string]uint64 `json:"funnel"`
	CandidatesExamined uint64            `json:"candidates_examined"`
	// DetourSlack summarizes xar_detour_slack_ratio, EpsilonConsumption
	// xar_epsilon_consumption_ratio.
	DetourSlack        HistogramSummary `json:"detour_slack_ratio"`
	EpsilonConsumption HistogramSummary `json:"epsilon_consumption_ratio"`
	Shadow             ShadowSnapshot   `json:"shadow"`
}

// Snapshot returns a point-in-time copy of everything the collector
// holds. Nil-safe (returns a zero snapshot with non-nil maps).
func (c *Collector) Snapshot() Snapshot {
	s := Snapshot{
		Funnel: make(map[string]uint64, NumStages),
		Shadow: ShadowSnapshot{
			Tasks:   make(map[string]uint64, 2),
			Unlocks: make(map[string]uint64, len(constraintNames)),
		},
	}
	if c == nil {
		return s
	}
	for i := 0; i < NumStages; i++ {
		s.Funnel[stageNames[i]] = c.funnel[i].Load()
	}
	s.CandidatesExamined = c.examined.Load()
	s.DetourSlack = summarize(c.slack)
	s.EpsilonConsumption = summarize(c.epsConsumption)
	s.Shadow.Enabled = c.shadowEnabled.Load()
	s.Shadow.Tasks[TaskNoMatch] = c.taskNoMatch.Value()
	s.Shadow.Tasks[TaskRegret] = c.taskRegret.Value()
	s.Shadow.Dropped = c.droppedTasks.Value()
	for i, name := range constraintNames {
		s.Shadow.Unlocks[name] = c.unlocks[i].Load()
	}
	c.mu.Lock()
	s.Shadow.Regret = RegretStats{
		Bookings:   c.regretTasks,
		Rematched:  c.regretChecked,
		WithRegret: c.regretHits,
		MaxM:       c.regretMax,
	}
	if c.regretHits > 0 {
		s.Shadow.Regret.MeanM = c.regretSum / float64(c.regretHits)
	}
	c.mu.Unlock()
	return s
}
