package roadnet

import (
	"math"

	"xar/internal/geo"
)

// NodeIndex answers nearest-node queries over a graph's geometry with a
// uniform bucket grid. Point locations (ride sources, request origins)
// are snapped to road nodes through this index before any shortest-path
// work happens.
type NodeIndex struct {
	g        *Graph
	box      geo.BBox
	cell     float64 // bucket edge, meters
	dLat     float64
	dLng     float64
	rows     int
	cols     int
	buckets  [][]NodeID
	diagonal float64
}

// NewNodeIndex builds an index over every node of g with buckets of
// roughly cellMeters on a side (250 m is a good default for city
// networks).
func NewNodeIndex(g *Graph, cellMeters float64) *NodeIndex {
	if cellMeters <= 0 {
		cellMeters = 250
	}
	box := g.BBox().Pad(cellMeters)
	midLat := (box.MinLat + box.MaxLat) / 2
	idx := &NodeIndex{
		g:    g,
		box:  box,
		cell: cellMeters,
		dLat: cellMeters / geo.MetersPerDegreeLat(),
		dLng: cellMeters / geo.MetersPerDegreeLng(midLat),
	}
	idx.rows = int(math.Ceil((box.MaxLat-box.MinLat)/idx.dLat)) + 1
	idx.cols = int(math.Ceil((box.MaxLng-box.MinLng)/idx.dLng)) + 1
	idx.buckets = make([][]NodeID, idx.rows*idx.cols)
	for i := 0; i < g.NumNodes(); i++ {
		b := idx.bucketOf(g.Point(NodeID(i)))
		idx.buckets[b] = append(idx.buckets[b], NodeID(i))
	}
	idx.diagonal = math.Hypot(box.WidthMeters(), box.HeightMeters())
	return idx
}

func (idx *NodeIndex) bucketOf(p geo.Point) int {
	r := int((p.Lat - idx.box.MinLat) / idx.dLat)
	c := int((p.Lng - idx.box.MinLng) / idx.dLng)
	if r < 0 {
		r = 0
	}
	if r >= idx.rows {
		r = idx.rows - 1
	}
	if c < 0 {
		c = 0
	}
	if c >= idx.cols {
		c = idx.cols - 1
	}
	return r*idx.cols + c
}

// Nearest returns the node closest to p (by haversine) and its distance.
// It expands bucket rings until the best candidate provably beats any
// node in unexplored rings. Returns InvalidNode only for an empty graph.
func (idx *NodeIndex) Nearest(p geo.Point) (NodeID, float64) {
	if idx.g.NumNodes() == 0 {
		return InvalidNode, math.Inf(1)
	}
	r0 := int((p.Lat - idx.box.MinLat) / idx.dLat)
	c0 := int((p.Lng - idx.box.MinLng) / idx.dLng)
	best := InvalidNode
	bestD := math.Inf(1)
	maxRing := idx.rows
	if idx.cols > maxRing {
		maxRing = idx.cols
	}
	for ring := 0; ring <= maxRing; ring++ {
		// Any node in an unexplored ring is at least (ring-1)*cell away,
		// so once bestD beats that bound we can stop.
		if best != InvalidNode && bestD < float64(ring-1)*idx.cell {
			break
		}
		for r := r0 - ring; r <= r0+ring; r++ {
			if r < 0 || r >= idx.rows {
				continue
			}
			for c := c0 - ring; c <= c0+ring; c++ {
				if c < 0 || c >= idx.cols {
					continue
				}
				// Only the ring border (interior already scanned).
				if ring > 0 && r != r0-ring && r != r0+ring && c != c0-ring && c != c0+ring {
					continue
				}
				for _, n := range idx.buckets[r*idx.cols+c] {
					d := geo.Haversine(p, idx.g.Point(n))
					if d < bestD {
						bestD = d
						best = n
					}
				}
			}
		}
	}
	return best, bestD
}

// Within appends to dst all nodes within radius meters of p and returns
// the extended slice.
func (idx *NodeIndex) Within(p geo.Point, radius float64, dst []NodeID) []NodeID {
	if radius < 0 {
		return dst
	}
	rSpan := int(radius/idx.cell) + 1
	r0 := int((p.Lat - idx.box.MinLat) / idx.dLat)
	c0 := int((p.Lng - idx.box.MinLng) / idx.dLng)
	for r := r0 - rSpan; r <= r0+rSpan; r++ {
		if r < 0 || r >= idx.rows {
			continue
		}
		for c := c0 - rSpan; c <= c0+rSpan; c++ {
			if c < 0 || c >= idx.cols {
				continue
			}
			for _, n := range idx.buckets[r*idx.cols+c] {
				if geo.Haversine(p, idx.g.Point(n)) <= radius {
					dst = append(dst, n)
				}
			}
		}
	}
	return dst
}
