package roadnet

import (
	"bytes"
	"encoding/binary"
	"math"
	"math/rand"
	"strings"
	"testing"
)

// chArtifact builds a small city with real shortcuts and returns the
// graph plus its serialized hierarchy.
func chArtifact(t testing.TB) (*Graph, *CH, []byte) {
	t.Helper()
	city := genTestCity(t, 16, 10, 4)
	g := city.Graph
	ch, err := BuildCH(g, CHConfig{CoreSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	if ch.NumShortcuts() == 0 {
		t.Fatal("test artifact has no shortcuts; corruption cases under-test")
	}
	var buf bytes.Buffer
	if err := ch.SaveCH(&buf); err != nil {
		t.Fatal(err)
	}
	return g, ch, buf.Bytes()
}

func TestCHPersistRoundTrip(t *testing.T) {
	g, ch, raw := chArtifact(t)
	back, err := LoadCH(bytes.NewReader(raw), g)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumArcs() != ch.NumArcs() || back.NumShortcuts() != ch.NumShortcuts() || back.CoreSize() != ch.CoreSize() {
		t.Fatalf("round trip changed shape: arcs %d→%d shortcuts %d→%d core %d→%d",
			ch.NumArcs(), back.NumArcs(), ch.NumShortcuts(), back.NumShortcuts(), ch.CoreSize(), back.CoreSize())
	}
	plain := NewSearcher(g)
	cs := back.NewSearcher()
	r := rand.New(rand.NewSource(2))
	for trial := 0; trial < 400; trial++ {
		a := NodeID(r.Intn(g.NumNodes()))
		b := NodeID(r.Intn(g.NumNodes()))
		checkAgainstReference(t, g, plain, cs, a, b)
	}
}

// arcRecords locates the arc region of a serialized CH and returns its
// byte offset plus the record count.
func arcRecords(raw []byte) (off, m int) {
	n := int(binary.LittleEndian.Uint32(raw[16:20]))
	return 28 + 4*n, int(binary.LittleEndian.Uint32(raw[20:24]))
}

// findShortcutArc returns the offset of the first persisted arc whose
// middle field is set.
func findShortcutArc(t *testing.T, raw []byte) int {
	arcsOff, m := arcRecords(raw)
	for i := 0; i < m; i++ {
		off := arcsOff + 20*i
		if binary.LittleEndian.Uint32(raw[off+8:off+12]) != noMiddleWire {
			return off
		}
	}
	t.Fatal("no shortcut arc in artifact")
	return 0
}

// TestLoadCHRejectsCorrupt drives LoadCH through every class of
// structural damage and requires each to be rejected with a useful
// error rather than loaded into a hierarchy that would corrupt queries.
func TestLoadCHRejectsCorrupt(t *testing.T) {
	g, _, raw := chArtifact(t)
	arcsOff, m := arcRecords(raw)
	cases := []struct {
		name    string
		mutate  func([]byte) []byte
		wantSub string
	}{
		{"empty", func(b []byte) []byte { return nil }, "CH header"},
		{"truncated header", func(b []byte) []byte { return b[:27] }, "CH header"},
		{"bad magic", func(b []byte) []byte { b[0] = 'Z'; return b }, "bad magic"},
		{"wrong fingerprint", func(b []byte) []byte { b[9] ^= 0xff; return b }, "different road graph"},
		{"node count mismatch", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[16:20], 7)
			return b
		}, "nodes"},
		{"zero core", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[24:28], 0)
			return b
		}, "core size"},
		{"core larger than graph", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[24:28], uint32(g.NumNodes()+1))
			return b
		}, "core size"},
		{"truncated rank table", func(b []byte) []byte { return b[:30] }, "rank table"},
		{"rank out of range", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[28:32], uint32(g.NumNodes()))
			return b
		}, "not a permutation"},
		{"rank duplicated", func(b []byte) []byte {
			copy(b[28:32], b[32:36])
			return b
		}, "not a permutation"},
		{"truncated arcs", func(b []byte) []byte { return b[:len(b)-5] }, "CH arc"},
		{"arc head out of range", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[arcsOff+4:arcsOff+8], uint32(g.NumNodes()))
			return b
		}, "out of range"},
		{"arc self loop", func(b []byte) []byte {
			copy(b[arcsOff+4:arcsOff+8], b[arcsOff:arcsOff+4])
			return b
		}, "out of range"},
		{"negative weight", func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[arcsOff+12:arcsOff+20], math.Float64bits(-1))
			return b
		}, "weight"},
		{"NaN weight", func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[arcsOff+12:arcsOff+20], math.Float64bits(math.NaN()))
			return b
		}, "weight"},
		{"weight not the edge length", func(b []byte) []byte {
			w := math.Float64frombits(binary.LittleEndian.Uint64(b[arcsOff+12 : arcsOff+20]))
			binary.LittleEndian.PutUint64(b[arcsOff+12:arcsOff+20], math.Float64bits(w+1))
			return b
		}, "corrupt"},
		{"middle out of range", func(b []byte) []byte {
			off := findShortcutArc(t, b)
			binary.LittleEndian.PutUint32(b[off+8:off+12], uint32(g.NumNodes()))
			return b
		}, "middle"},
		{"middle not below endpoints", func(b []byte) []byte {
			off := findShortcutArc(t, b)
			copy(b[off+8:off+12], b[off:off+4])
			return b
		}, "middle"},
		{"duplicate arc", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[20:24], uint32(m+1))
			return append(b, b[arcsOff:arcsOff+20]...)
		}, "duplicate"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mut := tc.mutate(append([]byte(nil), raw...))
			_, err := LoadCH(bytes.NewReader(mut), g)
			if err == nil {
				t.Fatal("corrupt artifact accepted")
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
	// The pristine bytes must still load — otherwise the cases above
	// pass vacuously.
	if _, err := LoadCH(bytes.NewReader(raw), g); err != nil {
		t.Fatalf("pristine artifact rejected: %v", err)
	}
}
