package roadnet

import (
	"math"
	"math/rand"
	"testing"

	"xar/internal/geo"
)

func genTestCity(t testing.TB, rows, cols int, seed int64) *City {
	t.Helper()
	city, err := GenerateCity(DefaultCityConfig(rows, cols, seed))
	if err != nil {
		t.Fatal(err)
	}
	return city
}

func TestGenerateCityValidation(t *testing.T) {
	bad := DefaultCityConfig(1, 10, 1)
	if _, err := GenerateCity(bad); err == nil {
		t.Fatal("1-row lattice must be rejected")
	}
	bad = DefaultCityConfig(10, 10, 1)
	bad.StreetSpacing = 0
	if _, err := GenerateCity(bad); err == nil {
		t.Fatal("zero spacing must be rejected")
	}
	bad = DefaultCityConfig(10, 10, 1)
	bad.AvenueSpeed = -1
	if _, err := GenerateCity(bad); err == nil {
		t.Fatal("negative speed must be rejected")
	}
	bad = DefaultCityConfig(10, 10, 1)
	bad.RemoveEdgeFrac = 0.9
	if _, err := GenerateCity(bad); err == nil {
		t.Fatal("RemoveEdgeFrac > 0.5 must be rejected")
	}
}

func TestGenerateCityDeterministic(t *testing.T) {
	c1 := genTestCity(t, 20, 12, 7)
	c2 := genTestCity(t, 20, 12, 7)
	if c1.Graph.NumNodes() != c2.Graph.NumNodes() || c1.Graph.NumEdges() != c2.Graph.NumEdges() {
		t.Fatal("same seed must produce identical networks")
	}
	for i := 0; i < c1.Graph.NumNodes(); i++ {
		if c1.Graph.Point(NodeID(i)) != c2.Graph.Point(NodeID(i)) {
			t.Fatalf("node %d geometry differs between identical seeds", i)
		}
	}
	c3 := genTestCity(t, 20, 12, 8)
	same := true
	for i := 0; i < c1.Graph.NumNodes() && i < c3.Graph.NumNodes(); i++ {
		if c1.Graph.Point(NodeID(i)) != c3.Graph.Point(NodeID(i)) {
			same = false
			break
		}
	}
	if same && c1.Graph.NumNodes() == c3.Graph.NumNodes() {
		t.Fatal("different seeds should perturb geometry")
	}
}

func TestCityStronglyConnected(t *testing.T) {
	city := genTestCity(t, 25, 15, 3)
	g := city.Graph
	s := NewSearcher(g)
	// Sample node pairs; every pair must be mutually reachable because the
	// two-way avenues form a strongly connected spine.
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		a := NodeID(r.Intn(g.NumNodes()))
		b := NodeID(r.Intn(g.NumNodes()))
		if !s.ShortestPath(a, b).Reachable() {
			t.Fatalf("%d→%d unreachable", a, b)
		}
		if !s.ShortestPath(b, a).Reachable() {
			t.Fatalf("%d→%d unreachable", b, a)
		}
	}
}

func TestCityDrivingExceedsStraightLine(t *testing.T) {
	city := genTestCity(t, 25, 15, 3)
	g := city.Graph
	s := NewSearcher(g)
	r := rand.New(rand.NewSource(2))
	exceeds := 0
	const trials = 60
	for i := 0; i < trials; i++ {
		a := NodeID(r.Intn(g.NumNodes()))
		b := NodeID(r.Intn(g.NumNodes()))
		if a == b {
			continue
		}
		res := s.ShortestPath(a, b)
		straight := geo.Haversine(g.Point(a), g.Point(b))
		if res.Dist < straight-1 {
			t.Fatalf("driving %v < straight line %v", res.Dist, straight)
		}
		if res.Dist > straight*1.05 {
			exceeds++
		}
	}
	// One-ways and the lattice force real detours for most pairs.
	if exceeds < trials/3 {
		t.Fatalf("only %d/%d pairs show a driving detour; one-ways ineffective?", exceeds, trials)
	}
}

func TestCityOneWayAsymmetry(t *testing.T) {
	city := genTestCity(t, 25, 15, 3)
	g := city.Graph
	s := NewSearcher(g)
	r := rand.New(rand.NewSource(5))
	asym := 0
	for i := 0; i < 80; i++ {
		a := NodeID(r.Intn(g.NumNodes()))
		b := NodeID(r.Intn(g.NumNodes()))
		if a == b {
			continue
		}
		dab := s.ShortestPath(a, b).Dist
		dba := s.ShortestPath(b, a).Dist
		if math.Abs(dab-dba) > 1 {
			asym++
		}
	}
	if asym == 0 {
		t.Fatal("no asymmetric pairs found; one-way streets not effective")
	}
}

func TestSnapToNode(t *testing.T) {
	city := genTestCity(t, 20, 12, 4)
	g := city.Graph
	for i := 0; i < g.NumNodes(); i += 17 {
		p := g.Point(NodeID(i))
		n, d := city.SnapToNode(p)
		if n != NodeID(i) && d > 1 {
			t.Fatalf("snapping a node's own location found node %d at %.2f m", n, d)
		}
	}
	// A point halfway between two intersections snaps to something nearby.
	box := g.BBox()
	center := box.Center()
	n, d := city.SnapToNode(center)
	if n == InvalidNode || d > 300 {
		t.Fatalf("snap of region center: node %d at %.1f m", n, d)
	}
}

func TestNodeIndexNearestMatchesBruteForce(t *testing.T) {
	city := genTestCity(t, 15, 10, 6)
	g := city.Graph
	r := rand.New(rand.NewSource(12))
	for trial := 0; trial < 100; trial++ {
		p := city.RandomPoint(r)
		gotN, gotD := city.Index.Nearest(p)
		bestD := math.Inf(1)
		for i := 0; i < g.NumNodes(); i++ {
			if d := geo.Haversine(p, g.Point(NodeID(i))); d < bestD {
				bestD = d
			}
		}
		if math.Abs(gotD-bestD) > 1e-6 {
			t.Fatalf("nearest(%v) = node %d at %.3f, brute force %.3f", p, gotN, gotD, bestD)
		}
	}
}

func TestNodeIndexWithin(t *testing.T) {
	city := genTestCity(t, 15, 10, 6)
	g := city.Graph
	p := g.BBox().Center()
	got := city.Index.Within(p, 500, nil)
	want := 0
	for i := 0; i < g.NumNodes(); i++ {
		if geo.Haversine(p, g.Point(NodeID(i))) <= 500 {
			want++
		}
	}
	if len(got) != want {
		t.Fatalf("Within found %d nodes, brute force %d", len(got), want)
	}
	if len(city.Index.Within(p, -1, nil)) != 0 {
		t.Fatal("negative radius must return nothing")
	}
}

func TestEmptyGraphNearest(t *testing.T) {
	g := &Graph{}
	g.AddNode(geo.Point{Lat: 40.7, Lng: -74})
	idx := NewNodeIndex(g, 250)
	if n, _ := idx.Nearest(geo.Point{Lat: 40.7, Lng: -74}); n != 0 {
		t.Fatalf("single-node graph nearest = %d", n)
	}
}

func TestSpeedFactorProfile(t *testing.T) {
	if f := SpeedFactor(3); f > 1.15 {
		t.Fatalf("3am factor = %v, want near free flow", f)
	}
	am := SpeedFactor(8.5)
	pm := SpeedFactor(17.5)
	if am < 1.5 || pm < 1.5 {
		t.Fatalf("peak factors %v / %v, want > 1.5", am, pm)
	}
	if SpeedFactor(8.5) != SpeedFactor(8.5+24) {
		t.Fatal("profile must be 24h periodic")
	}
	if SpeedFactor(-15.5) != SpeedFactor(8.5) {
		t.Fatal("negative hours must wrap")
	}
}

func TestCityBlockDimensions(t *testing.T) {
	city := genTestCity(t, 20, 12, 4)
	cfg := city.Config
	box := city.Graph.BBox()
	wantH := float64(cfg.Rows-1) * cfg.StreetSpacing
	wantW := float64(cfg.Cols-1) * cfg.AvenueSpacing
	if math.Abs(box.HeightMeters()-wantH) > 3*cfg.Jitter+10 {
		t.Fatalf("city height %.0f m, want ~%.0f m", box.HeightMeters(), wantH)
	}
	if math.Abs(box.WidthMeters()-wantW) > 3*cfg.Jitter+10 {
		t.Fatalf("city width %.0f m, want ~%.0f m", box.WidthMeters(), wantW)
	}
}
