package roadnet

import (
	"fmt"
	"math"
	"math/rand"

	"xar/internal/geo"
)

// CityConfig parameterizes the synthetic Manhattan-style network
// generator. The defaults (see DefaultCityConfig) produce a city whose
// statistics — block sizes, one-way share, speed mix — track midtown
// Manhattan, the region of the paper's NY taxi evaluation.
type CityConfig struct {
	// Origin is the south-west corner of the lattice.
	Origin geo.Point
	// Rows is the number of east–west streets, Cols the number of
	// north–south avenues.
	Rows, Cols int
	// StreetSpacing is the north–south block length in meters (Manhattan:
	// ~80 m), AvenueSpacing the east–west block length (~274 m).
	StreetSpacing, AvenueSpacing float64
	// Jitter perturbs intersection geometry by up to this many meters so
	// the network is not perfectly regular.
	Jitter float64
	// OneWayStreets makes alternate streets one-way (as in Manhattan),
	// which is what makes driving distance diverge from walking distance.
	OneWayStreets bool
	// AvenueSpeed and StreetSpeed are free-flow speeds in m/s.
	AvenueSpeed, StreetSpeed float64
	// RemoveEdgeFrac removes this fraction of street edges at random
	// (parks, construction), creating detours. The generator keeps only
	// the largest connected component afterwards.
	RemoveEdgeFrac float64
	// Diagonal adds a Broadway-like diagonal boulevard when true.
	Diagonal bool
	// Seed makes generation deterministic.
	Seed int64
}

// DefaultCityConfig returns a midtown-Manhattan-shaped configuration with
// the given lattice dimensions.
func DefaultCityConfig(rows, cols int, seed int64) CityConfig {
	return CityConfig{
		Origin:         geo.Point{Lat: 40.700, Lng: -74.020},
		Rows:           rows,
		Cols:           cols,
		StreetSpacing:  110,
		AvenueSpacing:  270,
		Jitter:         8,
		OneWayStreets:  true,
		AvenueSpeed:    9.0, // ~32 km/h
		StreetSpeed:    6.5, // ~23 km/h
		RemoveEdgeFrac: 0.03,
		Diagonal:       true,
		Seed:           seed,
	}
}

// City is a generated road network plus the indices the rest of the
// system needs to use it.
type City struct {
	Graph  *Graph
	Index  *NodeIndex
	Config CityConfig
}

// GenerateCity builds a synthetic city network from cfg. The result is
// deterministic in cfg (including Seed). It returns an error for
// degenerate configurations.
func GenerateCity(cfg CityConfig) (*City, error) {
	if cfg.Rows < 2 || cfg.Cols < 2 {
		return nil, fmt.Errorf("roadnet: lattice must be at least 2x2, got %dx%d", cfg.Rows, cfg.Cols)
	}
	if cfg.StreetSpacing <= 0 || cfg.AvenueSpacing <= 0 {
		return nil, fmt.Errorf("roadnet: spacings must be positive")
	}
	if cfg.AvenueSpeed <= 0 || cfg.StreetSpeed <= 0 {
		return nil, fmt.Errorf("roadnet: speeds must be positive")
	}
	if cfg.RemoveEdgeFrac < 0 || cfg.RemoveEdgeFrac > 0.5 {
		return nil, fmt.Errorf("roadnet: RemoveEdgeFrac %v out of [0, 0.5]", cfg.RemoveEdgeFrac)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := &Graph{}

	// Lay out intersections: row r, col c at Origin + r*StreetSpacing
	// north + c*AvenueSpacing east, with jitter.
	nodeAt := make([]NodeID, cfg.Rows*cfg.Cols)
	for r := 0; r < cfg.Rows; r++ {
		for c := 0; c < cfg.Cols; c++ {
			north := float64(r) * cfg.StreetSpacing
			east := float64(c) * cfg.AvenueSpacing
			if cfg.Jitter > 0 {
				north += (rng.Float64()*2 - 1) * cfg.Jitter
				east += (rng.Float64()*2 - 1) * cfg.Jitter
			}
			p := geo.Destination(cfg.Origin, 0, north)
			p = geo.Destination(p, 90, east)
			nodeAt[r*cfg.Cols+c] = g.AddNode(p)
		}
	}

	// Avenues (north–south, along columns): always two-way, faster.
	for c := 0; c < cfg.Cols; c++ {
		for r := 0; r+1 < cfg.Rows; r++ {
			a := nodeAt[r*cfg.Cols+c]
			b := nodeAt[(r+1)*cfg.Cols+c]
			if err := g.AddBidirectional(a, b, 0, cfg.AvenueSpeed, ClassAvenue); err != nil {
				return nil, err
			}
		}
	}

	// Streets (east–west, along rows): alternate one-way when configured.
	// A random fraction is omitted entirely (parks, construction): since
	// every intersection sits on a two-way avenue, omitting street edges
	// cannot break strong connectivity, only lengthen detours.
	for r := 0; r < cfg.Rows; r++ {
		eastbound := r%2 == 0
		for c := 0; c+1 < cfg.Cols; c++ {
			a := nodeAt[r*cfg.Cols+c]
			b := nodeAt[r*cfg.Cols+c+1]
			if cfg.RemoveEdgeFrac > 0 && rng.Float64() < cfg.RemoveEdgeFrac {
				continue
			}
			var err error
			if cfg.OneWayStreets {
				if eastbound {
					err = g.AddEdge(a, b, 0, cfg.StreetSpeed, ClassStreet)
				} else {
					err = g.AddEdge(b, a, 0, cfg.StreetSpeed, ClassStreet)
				}
			} else {
				err = g.AddBidirectional(a, b, 0, cfg.StreetSpeed, ClassStreet)
			}
			if err != nil {
				return nil, err
			}
		}
	}

	// Broadway-like diagonal: a fast two-way boulevard cutting across the
	// lattice, connecting (0,0)-ish to (Rows-1, Cols-1)-ish.
	if cfg.Diagonal {
		steps := cfg.Rows
		if cfg.Cols < steps {
			steps = cfg.Cols
		}
		prev := nodeAt[0]
		for s := 1; s < steps; s++ {
			r := s * (cfg.Rows - 1) / (steps - 1)
			c := s * (cfg.Cols - 1) / (steps - 1)
			cur := nodeAt[r*cfg.Cols+c]
			if cur != prev {
				if err := g.AddBidirectional(prev, cur, 0, cfg.AvenueSpeed*1.15, ClassHighway); err != nil {
					return nil, err
				}
				prev = cur
			}
		}
	}

	// Keep only the largest weakly-connected component so every node can
	// (weakly) reach every other; with one-ways, strong connectivity is
	// ensured by the two-way avenues forming a strongly connected spine.
	comp := g.LargestComponent()
	if len(comp) < g.NumNodes() {
		sub, _ := g.InducedSubgraph(comp)
		g = sub
	}

	return &City{
		Graph:  g,
		Index:  NewNodeIndex(g, 250),
		Config: cfg,
	}, nil
}

// SnapToNode returns the road node nearest to p and the straight-line
// snap distance.
func (c *City) SnapToNode(p geo.Point) (NodeID, float64) {
	return c.Index.Nearest(p)
}

// RandomPoint returns a uniformly random point within the city's bounding
// box, drawn from rng. Used by tests and workload generation.
func (c *City) RandomPoint(rng *rand.Rand) geo.Point {
	box := c.Graph.BBox()
	return geo.Point{
		Lat: box.MinLat + rng.Float64()*(box.MaxLat-box.MinLat),
		Lng: box.MinLng + rng.Float64()*(box.MaxLng-box.MinLng),
	}
}

// SpeedFactor models time-of-day congestion: free-flow speeds are divided
// by the returned factor. hour is in [0,24). The profile has AM and PM
// peaks like urban traffic counts.
func SpeedFactor(hour float64) float64 {
	hour = math.Mod(hour, 24)
	if hour < 0 {
		hour += 24
	}
	peak := func(center, width, height float64) float64 {
		d := hour - center
		return height * math.Exp(-d*d/(2*width*width))
	}
	// Base factor 1.0 (free flow at night), up to ~1.8 in peaks.
	return 1.0 + peak(8.5, 1.5, 0.8) + peak(17.5, 1.8, 0.8) + peak(13, 2.5, 0.2)
}
