package roadnet

import (
	"math"
	"math/rand"
	"testing"
)

func TestALTValidation(t *testing.T) {
	if _, err := NewALT(&Graph{}, 4); err == nil {
		t.Fatal("empty graph must be rejected")
	}
}

func TestALTSeedCount(t *testing.T) {
	city := genTestCity(t, 15, 10, 3)
	a, err := NewALT(city.Graph, 6)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumSeeds() != 6 {
		t.Fatalf("seeds = %d", a.NumSeeds())
	}
	// k larger than the graph clamps.
	small := &Graph{}
	p := city.Graph.Point(0)
	small.AddNode(p)
	n2 := small.AddNode(city.Graph.Point(1))
	_ = small.AddBidirectional(0, n2, 0, 10, ClassStreet)
	a2, err := NewALT(small, 100)
	if err != nil {
		t.Fatal(err)
	}
	if a2.NumSeeds() != 2 {
		t.Fatalf("clamped seeds = %d", a2.NumSeeds())
	}
	// k <= 0 defaults.
	a3, err := NewALT(city.Graph, 0)
	if err != nil {
		t.Fatal(err)
	}
	if a3.NumSeeds() != 8 {
		t.Fatalf("default seeds = %d", a3.NumSeeds())
	}
}

func TestALTMatchesPlainAStar(t *testing.T) {
	city := genTestCity(t, 20, 12, 7)
	g := city.Graph
	alt, err := NewALT(g, 8)
	if err != nil {
		t.Fatal(err)
	}
	plain := NewSearcher(g)
	fast := alt.NewSearcher()
	r := rand.New(rand.NewSource(9))
	for trial := 0; trial < 150; trial++ {
		a := NodeID(r.Intn(g.NumNodes()))
		b := NodeID(r.Intn(g.NumNodes()))
		want := plain.ShortestPath(a, b)
		got := fast.ShortestPath(a, b)
		if want.Reachable() != got.Reachable() {
			t.Fatalf("%d→%d reachability differs", a, b)
		}
		if want.Reachable() && math.Abs(want.Dist-got.Dist) > 1e-6 {
			t.Fatalf("%d→%d: ALT %v vs A* %v", a, b, got.Dist, want.Dist)
		}
		if got.Reachable() {
			if pl, err := g.PathLength(got.Path); err != nil || math.Abs(pl-got.Dist) > 1e-6 {
				t.Fatalf("%d→%d: ALT path invalid (%v, %v)", a, b, pl, err)
			}
		}
	}
}

func TestALTMatchesOnRandomGraphs(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for trial := 0; trial < 10; trial++ {
		g := randomGraph(r, 30, 0.12)
		alt, err := NewALT(g, 5)
		if err != nil {
			t.Fatal(err)
		}
		plain := NewSearcher(g)
		fast := alt.NewSearcher()
		for i := 0; i < g.NumNodes(); i += 3 {
			for j := 0; j < g.NumNodes(); j += 5 {
				want := plain.ShortestPath(NodeID(i), NodeID(j))
				got := fast.ShortestPath(NodeID(i), NodeID(j))
				if want.Reachable() != got.Reachable() ||
					(want.Reachable() && math.Abs(want.Dist-got.Dist) > 1e-6) {
					t.Fatalf("trial %d %d→%d: ALT %v vs A* %v", trial, i, j, got.Dist, want.Dist)
				}
			}
		}
	}
}

func TestALTHeuristicAdmissible(t *testing.T) {
	city := genTestCity(t, 15, 10, 3)
	g := city.Graph
	alt, err := NewALT(g, 6)
	if err != nil {
		t.Fatal(err)
	}
	plain := NewSearcher(g)
	r := rand.New(rand.NewSource(2))
	for trial := 0; trial < 100; trial++ {
		v := NodeID(r.Intn(g.NumNodes()))
		tgt := NodeID(r.Intn(g.NumNodes()))
		res := plain.ShortestPath(v, tgt)
		if !res.Reachable() {
			continue
		}
		if h := alt.heuristic(v, tgt); h > res.Dist+1e-6 {
			t.Fatalf("heuristic %v exceeds true distance %v for %d→%d", h, res.Dist, v, tgt)
		}
	}
}

func TestALTSettlesFewerNodes(t *testing.T) {
	city := genTestCity(t, 30, 16, 5)
	g := city.Graph
	alt, err := NewALT(g, 8)
	if err != nil {
		t.Fatal(err)
	}
	fast := alt.NewSearcher()
	plain := NewSearcher(g)
	r := rand.New(rand.NewSource(6))

	var altSettled, plainSettled int
	for trial := 0; trial < 40; trial++ {
		a := NodeID(r.Intn(g.NumNodes()))
		b := NodeID(r.Intn(g.NumNodes()))
		fast.ShortestPath(a, b)
		altSettled += fast.SettledNodes()
		// Plain Dijkstra-like accounting: run the haversine A* and count.
		plain.ShortestPath(a, b)
		n := 0
		for _, st := range plain.stamp {
			if st == plain.gen {
				n++
			}
		}
		plainSettled += n
	}
	if altSettled >= plainSettled {
		t.Fatalf("ALT settled %d nodes, plain A* %d; expected a reduction", altSettled, plainSettled)
	}
}

func BenchmarkShortestPathPlainAStar(b *testing.B) {
	city, err := GenerateCity(DefaultCityConfig(40, 22, 5))
	if err != nil {
		b.Fatal(err)
	}
	g := city.Graph
	s := NewSearcher(g)
	r := rand.New(rand.NewSource(1))
	pairs := make([][2]NodeID, 64)
	for i := range pairs {
		pairs[i] = [2]NodeID{NodeID(r.Intn(g.NumNodes())), NodeID(r.Intn(g.NumNodes()))}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pairs[i%len(pairs)]
		s.ShortestPath(p[0], p[1])
	}
}

func BenchmarkShortestPathALT(b *testing.B) {
	city, err := GenerateCity(DefaultCityConfig(40, 22, 5))
	if err != nil {
		b.Fatal(err)
	}
	g := city.Graph
	alt, err := NewALT(g, 8)
	if err != nil {
		b.Fatal(err)
	}
	s := alt.NewSearcher()
	r := rand.New(rand.NewSource(1))
	pairs := make([][2]NodeID, 64)
	for i := range pairs {
		pairs[i] = [2]NodeID{NodeID(r.Intn(g.NumNodes())), NodeID(r.Intn(g.NumNodes()))}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pairs[i%len(pairs)]
		s.ShortestPath(p[0], p[1])
	}
}
