package roadnet

import (
	"errors"
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"
)

func TestCHValidation(t *testing.T) {
	if _, err := BuildCH(&Graph{}, CHConfig{}); err == nil {
		t.Fatal("empty graph must be rejected")
	}
}

func TestCHBudgetExceeded(t *testing.T) {
	city := genTestCity(t, 20, 12, 3)
	_, err := BuildCH(city.Graph, CHConfig{Budget: time.Nanosecond})
	if !errors.Is(err, ErrCHBudgetExceeded) {
		t.Fatalf("want ErrCHBudgetExceeded, got %v", err)
	}
}

// checkAgainstReference compares one CH query against the exact A*
// reference: reachability, distance (1e-6 m tolerance for float
// association), and path validity (a real edge walk whose summed length
// is the reported distance).
func checkAgainstReference(t *testing.T, g *Graph, plain *Searcher, cs *CHSearcher, a, b NodeID) {
	t.Helper()
	want := plain.ShortestPath(a, b)
	got := cs.ShortestPath(a, b)
	if want.Reachable() != got.Reachable() {
		t.Fatalf("%d→%d: reachability differs (CH %v, reference %v)", a, b, got.Dist, want.Dist)
	}
	if !want.Reachable() {
		if got.Path != nil {
			t.Fatalf("%d→%d: unreachable pair returned a path", a, b)
		}
		return
	}
	if math.Abs(want.Dist-got.Dist) > 1e-6 {
		t.Fatalf("%d→%d: CH %v vs reference %v (diff %g)", a, b, got.Dist, want.Dist, got.Dist-want.Dist)
	}
	if got.Path[0] != a || got.Path[len(got.Path)-1] != b {
		t.Fatalf("%d→%d: path endpoints %d…%d", a, b, got.Path[0], got.Path[len(got.Path)-1])
	}
	if pl, err := g.PathLength(got.Path); err != nil || math.Abs(pl-got.Dist) > 1e-6 {
		t.Fatalf("%d→%d: CH path invalid (len %v, err %v, dist %v)", a, b, pl, err, got.Dist)
	}
}

// TestCHMatchesDijkstraCity checks exact-distance equality on synthetic
// city networks across several seeds: 4500 random pairs here plus the
// ~9600 exhaustive pairs of TestCHMatchesDijkstraRandomGraphs put the
// total reference comparison above 10k pairs.
func TestCHMatchesDijkstraCity(t *testing.T) {
	// CoreSize 0 (default) leaves these small graphs entirely inside the
	// distance table; CoreSize 32 forces deep contraction so shortcut
	// insertion, stall-on-demand, and middle-node unpacking are all on
	// the tested path.
	for _, coreSize := range []int{0, 32} {
		for _, seed := range []int64{3, 7, 11} {
			city := genTestCity(t, 16, 10, seed)
			g := city.Graph
			ch, err := BuildCH(g, CHConfig{CoreSize: coreSize})
			if err != nil {
				t.Fatal(err)
			}
			plain := NewSearcher(g)
			cs := ch.NewSearcher()
			r := rand.New(rand.NewSource(seed * 100))
			for trial := 0; trial < 1500; trial++ {
				a := NodeID(r.Intn(g.NumNodes()))
				b := NodeID(r.Intn(g.NumNodes()))
				checkAgainstReference(t, g, plain, cs, a, b)
			}
		}
	}
}

// TestCHMatchesDijkstraRandomGraphs runs the exhaustive all-pairs
// comparison on sparse random directed graphs, whose one-way arcs make
// many pairs unreachable — the disconnected half of the property.
func TestCHMatchesDijkstraRandomGraphs(t *testing.T) {
	for _, seed := range []int64{1, 2, 5, 8, 13, 21} {
		r := rand.New(rand.NewSource(seed))
		g := randomGraph(r, 40, 0.06)
		// CoreSize 8 on a 40-node graph forces contraction of most of
		// the graph (the default would cover it all with the table).
		ch, err := BuildCH(g, CHConfig{CoreSize: 8})
		if err != nil {
			t.Fatal(err)
		}
		plain := NewSearcher(g)
		cs := ch.NewSearcher()
		unreachable := 0
		for i := 0; i < g.NumNodes(); i++ {
			for j := 0; j < g.NumNodes(); j++ {
				checkAgainstReference(t, g, plain, cs, NodeID(i), NodeID(j))
				if !plain.ShortestPath(NodeID(i), NodeID(j)).Reachable() {
					unreachable++
				}
			}
		}
		if unreachable == 0 {
			t.Fatalf("seed %d: random graph had no unreachable pairs; property under-tests disconnection", seed)
		}
	}
}

// TestCHSettlesFewerNodes verifies the point of the hierarchy: queries
// settle far fewer nodes than plain A*.
func TestCHSettlesFewerNodes(t *testing.T) {
	city := genTestCity(t, 80, 44, 5)
	g := city.Graph
	ch, err := BuildCH(g, CHConfig{})
	if err != nil {
		t.Fatal(err)
	}
	cs := ch.NewSearcher()
	plain := NewSearcher(g)
	r := rand.New(rand.NewSource(6))
	var chSettled, plainSettled int
	for trial := 0; trial < 40; trial++ {
		a := NodeID(r.Intn(g.NumNodes()))
		b := NodeID(r.Intn(g.NumNodes()))
		cs.ShortestPath(a, b)
		chSettled += cs.SettledNodes()
		plain.ShortestPath(a, b)
		for _, st := range plain.stamp {
			if st == plain.gen {
				plainSettled++
			}
		}
	}
	if chSettled*2 >= plainSettled {
		t.Fatalf("CH settled %d nodes vs plain %d; expected < half", chSettled, plainSettled)
	}
}

// TestCHPooledRaceStress drives a shared CH through a sync.Pool of
// searchers from 8 goroutines — the engine's checkout pattern — and
// cross-checks every result against a per-goroutine exact reference.
// Run with -race.
func TestCHPooledRaceStress(t *testing.T) {
	city := genTestCity(t, 16, 10, 9)
	g := city.Graph
	ch, err := BuildCH(g, CHConfig{CoreSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	pool := sync.Pool{New: func() any { return ch.NewSearcher() }}
	const goroutines = 8
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			plain := NewSearcher(g)
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < 300; i++ {
				a := NodeID(r.Intn(g.NumNodes()))
				b := NodeID(r.Intn(g.NumNodes()))
				cs := pool.Get().(*CHSearcher)
				got := cs.ShortestPath(a, b)
				pool.Put(cs)
				want := plain.ShortestPath(a, b)
				if want.Reachable() != got.Reachable() ||
					(want.Reachable() && math.Abs(want.Dist-got.Dist) > 1e-6) {
					errs <- errors.New("pooled CH result diverged from reference")
					return
				}
			}
		}(int64(w + 1))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func BenchmarkShortestPathCH(b *testing.B) {
	city, err := GenerateCity(DefaultCityConfig(40, 22, 5))
	if err != nil {
		b.Fatal(err)
	}
	g := city.Graph
	ch, err := BuildCH(g, CHConfig{})
	if err != nil {
		b.Fatal(err)
	}
	s := ch.NewSearcher()
	r := rand.New(rand.NewSource(1))
	pairs := make([][2]NodeID, 64)
	for i := range pairs {
		pairs[i] = [2]NodeID{NodeID(r.Intn(g.NumNodes())), NodeID(r.Intn(g.NumNodes()))}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pairs[i%len(pairs)]
		s.ShortestPath(p[0], p[1])
	}
}
