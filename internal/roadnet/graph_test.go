package roadnet

import (
	"math"
	"math/rand"
	"testing"

	"xar/internal/geo"
)

// buildTriangle makes a 3-node graph: 0→1 (100m), 1→2 (100m), 0→2 (250m).
// The shortest 0→2 path goes through 1.
func buildTriangle(t *testing.T) *Graph {
	t.Helper()
	g := &Graph{}
	p0 := geo.Point{Lat: 40.70, Lng: -74.00}
	n0 := g.AddNode(p0)
	n1 := g.AddNode(geo.Destination(p0, 90, 100))
	n2 := g.AddNode(geo.Destination(p0, 90, 200))
	if err := g.AddEdge(n0, n1, 100, 10, ClassStreet); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(n1, n2, 100, 10, ClassStreet); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(n0, n2, 250, 10, ClassStreet); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestAddEdgeValidation(t *testing.T) {
	g := &Graph{}
	a := g.AddNode(geo.Point{Lat: 40.7, Lng: -74})
	b := g.AddNode(geo.Point{Lat: 40.71, Lng: -74})
	if err := g.AddEdge(a, b, 100, 0, ClassStreet); err == nil {
		t.Fatal("zero speed must be rejected")
	}
	if err := g.AddEdge(a, a, 100, 10, ClassStreet); err == nil {
		t.Fatal("self-loop must be rejected")
	}
	if err := g.AddEdge(a, 99, 100, 10, ClassStreet); err == nil {
		t.Fatal("out-of-range endpoint must be rejected")
	}
	if err := g.AddEdge(-1, b, 100, 10, ClassStreet); err == nil {
		t.Fatal("negative endpoint must be rejected")
	}
}

func TestAddEdgeDefaultsLengthToHaversine(t *testing.T) {
	g := &Graph{}
	p := geo.Point{Lat: 40.7, Lng: -74}
	a := g.AddNode(p)
	b := g.AddNode(geo.Destination(p, 90, 500))
	if err := g.AddEdge(a, b, 0, 10, ClassStreet); err != nil {
		t.Fatal(err)
	}
	if l := g.Out(a)[0].Length; math.Abs(l-500) > 1 {
		t.Fatalf("defaulted edge length = %.2f, want ~500", l)
	}
}

func TestReverseAdjacency(t *testing.T) {
	g := buildTriangle(t)
	in2 := g.In(2)
	if len(in2) != 2 {
		t.Fatalf("node 2 has %d incoming edges, want 2", len(in2))
	}
	sources := map[NodeID]bool{}
	for _, e := range in2 {
		sources[e.To] = true
	}
	if !sources[0] || !sources[1] {
		t.Fatalf("incoming sources of node 2 = %v, want {0,1}", sources)
	}
}

func TestShortestPathTriangle(t *testing.T) {
	g := buildTriangle(t)
	s := NewSearcher(g)
	res := s.ShortestPath(0, 2)
	if !res.Reachable() {
		t.Fatal("0→2 must be reachable")
	}
	if math.Abs(res.Dist-200) > 1e-9 {
		t.Fatalf("dist = %v, want 200 (through node 1)", res.Dist)
	}
	want := []NodeID{0, 1, 2}
	if len(res.Path) != 3 {
		t.Fatalf("path = %v, want %v", res.Path, want)
	}
	for i := range want {
		if res.Path[i] != want[i] {
			t.Fatalf("path = %v, want %v", res.Path, want)
		}
	}
}

func TestShortestPathSameNode(t *testing.T) {
	g := buildTriangle(t)
	s := NewSearcher(g)
	res := s.ShortestPath(1, 1)
	if res.Dist != 0 || len(res.Path) != 1 || res.Path[0] != 1 {
		t.Fatalf("self path = %+v", res)
	}
}

func TestShortestPathUnreachable(t *testing.T) {
	g := buildTriangle(t)
	s := NewSearcher(g)
	// Edges all point forward; 2→0 has no route.
	res := s.ShortestPath(2, 0)
	if res.Reachable() {
		t.Fatalf("2→0 should be unreachable, got %+v", res)
	}
}

// floydWarshall is an O(n^3) reference implementation used to validate
// Dijkstra/A* on random graphs.
func floydWarshall(g *Graph) [][]float64 {
	n := g.NumNodes()
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
		for j := range d[i] {
			if i != j {
				d[i][j] = math.Inf(1)
			}
		}
	}
	for v := 0; v < n; v++ {
		for _, e := range g.Out(NodeID(v)) {
			if e.Length < d[v][e.To] {
				d[v][e.To] = e.Length
			}
		}
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			if math.IsInf(d[i][k], 1) {
				continue
			}
			for j := 0; j < n; j++ {
				if d[i][k]+d[k][j] < d[i][j] {
					d[i][j] = d[i][k] + d[k][j]
				}
			}
		}
	}
	return d
}

func randomGraph(r *rand.Rand, n int, edgeProb float64) *Graph {
	g := &Graph{}
	origin := geo.Point{Lat: 40.7, Lng: -74.0}
	for i := 0; i < n; i++ {
		p := geo.Destination(origin, 0, r.Float64()*5000)
		p = geo.Destination(p, 90, r.Float64()*5000)
		g.AddNode(p)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j || r.Float64() > edgeProb {
				continue
			}
			base := geo.Haversine(g.Point(NodeID(i)), g.Point(NodeID(j)))
			// Edge length ≥ straight line keeps the A* heuristic admissible.
			length := base * (1 + r.Float64())
			if length <= 0 {
				length = 1
			}
			_ = g.AddEdge(NodeID(i), NodeID(j), length, 10, ClassStreet)
		}
	}
	return g
}

func TestAStarMatchesFloydWarshall(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		g := randomGraph(r, 25, 0.15)
		ref := floydWarshall(g)
		s := NewSearcher(g)
		for i := 0; i < g.NumNodes(); i++ {
			for j := 0; j < g.NumNodes(); j++ {
				res := s.ShortestPath(NodeID(i), NodeID(j))
				if math.IsInf(ref[i][j], 1) != !res.Reachable() {
					t.Fatalf("trial %d: reachability mismatch %d→%d (ref %v, got %v)",
						trial, i, j, ref[i][j], res.Dist)
				}
				if res.Reachable() && math.Abs(res.Dist-ref[i][j]) > 1e-6 {
					t.Fatalf("trial %d: dist %d→%d = %v, want %v", trial, i, j, res.Dist, ref[i][j])
				}
				// Path length must equal reported distance.
				if res.Reachable() {
					pl, err := g.PathLength(res.Path)
					if err != nil {
						t.Fatalf("trial %d: invalid path: %v", trial, err)
					}
					if math.Abs(pl-res.Dist) > 1e-6 {
						t.Fatalf("trial %d: path length %v != dist %v", trial, pl, res.Dist)
					}
				}
			}
		}
	}
}

func TestBoundedDijkstraAgainstFullSearch(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	g := randomGraph(r, 40, 0.12)
	ref := floydWarshall(g)
	s := NewSearcher(g)
	const radius = 4000.0
	for src := 0; src < g.NumNodes(); src++ {
		got := map[NodeID]float64{}
		s.DistancesWithin(NodeID(src), radius, func(v NodeID, d float64) bool {
			got[v] = d
			return true
		})
		for j := 0; j < g.NumNodes(); j++ {
			want, ok := ref[src][j], ref[src][j] <= radius
			d, found := got[NodeID(j)]
			if ok != found {
				t.Fatalf("src %d node %d: bounded search found=%v want=%v (d=%v)", src, j, found, ok, want)
			}
			if found && math.Abs(d-want) > 1e-6 {
				t.Fatalf("src %d node %d: dist %v want %v", src, j, d, want)
			}
		}
	}
}

func TestReverseBoundedSearch(t *testing.T) {
	g := buildTriangle(t)
	s := NewSearcher(g)
	// Nodes that can reach node 2 within 150m: node 2 itself (0) and
	// node 1 (100). Node 0 is 200 away (via 1).
	got := map[NodeID]float64{}
	s.DistancesWithinReverse(2, 150, func(v NodeID, d float64) bool {
		got[v] = d
		return true
	})
	if len(got) != 2 || got[2] != 0 || got[1] != 100 {
		t.Fatalf("reverse bounded search = %v", got)
	}
}

func TestDistancesToAll(t *testing.T) {
	g := buildTriangle(t)
	s := NewSearcher(g)
	d := s.DistancesToAll(0)
	if d[0] != 0 || d[1] != 100 || d[2] != 200 {
		t.Fatalf("distances = %v", d)
	}
	dRev := s.DistancesToAll(2)
	if !math.IsInf(dRev[0], 1) {
		t.Fatalf("node 0 should be unreachable from 2, got %v", dRev[0])
	}
}

func TestVisitEarlyStop(t *testing.T) {
	g := buildTriangle(t)
	s := NewSearcher(g)
	count := 0
	s.DistancesWithin(0, 1e9, func(NodeID, float64) bool {
		count++
		return count < 2
	})
	if count != 2 {
		t.Fatalf("visit called %d times after early stop, want 2", count)
	}
}

func TestSearcherReuse(t *testing.T) {
	g := buildTriangle(t)
	s := NewSearcher(g)
	for i := 0; i < 100; i++ {
		if d := s.ShortestPath(0, 2).Dist; math.Abs(d-200) > 1e-9 {
			t.Fatalf("iteration %d: dist = %v", i, d)
		}
		if d := s.ShortestPath(0, 1).Dist; math.Abs(d-100) > 1e-9 {
			t.Fatalf("iteration %d: dist = %v", i, d)
		}
	}
}

func TestTravelTime(t *testing.T) {
	g := buildTriangle(t)
	tt, err := g.TravelTime([]NodeID{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tt-20) > 1e-9 { // 200m at 10 m/s
		t.Fatalf("travel time = %v, want 20", tt)
	}
	if _, err := g.TravelTime([]NodeID{2, 0}); err == nil {
		t.Fatal("non-adjacent path must error")
	}
}

func TestPathLengthErrors(t *testing.T) {
	g := buildTriangle(t)
	if _, err := g.PathLength([]NodeID{2, 1}); err == nil {
		t.Fatal("reverse of a one-way edge must error")
	}
	if l, err := g.PathLength(nil); err != nil || l != 0 {
		t.Fatalf("empty path: %v, %v", l, err)
	}
}

func TestLargestComponent(t *testing.T) {
	g := &Graph{}
	p := geo.Point{Lat: 40.7, Lng: -74}
	// Component A: 3 nodes; component B: 2 nodes.
	a0 := g.AddNode(p)
	a1 := g.AddNode(geo.Destination(p, 90, 100))
	a2 := g.AddNode(geo.Destination(p, 90, 200))
	b0 := g.AddNode(geo.Destination(p, 0, 5000))
	b1 := g.AddNode(geo.Destination(p, 0, 5100))
	_ = g.AddBidirectional(a0, a1, 0, 10, ClassStreet)
	_ = g.AddBidirectional(a1, a2, 0, 10, ClassStreet)
	_ = g.AddBidirectional(b0, b1, 0, 10, ClassStreet)

	comp := g.LargestComponent()
	if len(comp) != 3 {
		t.Fatalf("largest component has %d nodes, want 3", len(comp))
	}
	sub, remap := g.InducedSubgraph(comp)
	if sub.NumNodes() != 3 || sub.NumEdges() != 4 {
		t.Fatalf("subgraph: %d nodes %d edges, want 3/4", sub.NumNodes(), sub.NumEdges())
	}
	if remap[b0] != InvalidNode || remap[b1] != InvalidNode {
		t.Fatal("dropped nodes must remap to InvalidNode")
	}
}

func TestRoadClassString(t *testing.T) {
	for _, c := range []RoadClass{ClassHighway, ClassAvenue, ClassStreet, ClassLane} {
		if c.String() == "" {
			t.Fatalf("empty string for class %d", c)
		}
	}
	if RoadClass(99).String() != "roadclass(99)" {
		t.Fatal("unknown class string")
	}
}
