// Package roadnet provides the road-network substrate of the XAR system:
// a directed graph with geometry, shortest-path searches (Dijkstra,
// bounded Dijkstra, A*), a nearest-node spatial index, a deterministic
// synthetic Manhattan-style city generator, and a time-of-day travel-time
// model.
//
// Every distance the XAR discretization and index rely on — grid→landmark
// driving distance, landmark–landmark distance, route lengths, detours —
// is a shortest-path quantity on this graph. The paper obtains these from
// OpenStreetMap / OpenTripPlanner; here the graph is synthetic but
// preserves the properties the algorithms depend on: driving distance ≥
// straight-line distance, one-way streets making driving and walking
// distances diverge, and heterogeneous road speeds.
package roadnet

import (
	"fmt"
	"math"

	"xar/internal/geo"
	"xar/internal/memsize"
)

// NodeID indexes a node (way-point) in a Graph. IDs are dense: the i-th
// added node has ID i.
type NodeID int32

// InvalidNode marks "no node".
const InvalidNode NodeID = -1

// RoadClass describes an edge's role in the network; it drives speed
// assignment in the generator and importance scoring in landmark
// extraction.
type RoadClass uint8

// Road classes, from fastest to slowest.
const (
	ClassHighway RoadClass = iota
	ClassAvenue
	ClassStreet
	ClassLane
)

func (c RoadClass) String() string {
	switch c {
	case ClassHighway:
		return "highway"
	case ClassAvenue:
		return "avenue"
	case ClassStreet:
		return "street"
	case ClassLane:
		return "lane"
	default:
		return fmt.Sprintf("roadclass(%d)", uint8(c))
	}
}

// Edge is a directed road segment.
type Edge struct {
	To     NodeID
	Length float64 // meters
	Speed  float64 // free-flow speed, m/s
	Class  RoadClass
}

// Graph is a directed road network. The zero value is empty and ready to
// use. Graph is not safe for concurrent mutation; once built it is
// read-only and safe for concurrent searches (each search carries its own
// scratch state).
type Graph struct {
	pts     []geo.Point
	out     [][]Edge
	in      [][]Edge // reverse adjacency, for searches toward a target
	edgeCnt int
}

// MeasureMem implements memsize.Measurer. The graph is immutable after
// construction, so the walk takes no locks.
func (g *Graph) MeasureMem(a *memsize.Accumulator) {
	if g == nil {
		return
	}
	a.Add(g)
}

// AddNode inserts a node at p and returns its ID.
func (g *Graph) AddNode(p geo.Point) NodeID {
	id := NodeID(len(g.pts))
	g.pts = append(g.pts, p)
	g.out = append(g.out, nil)
	g.in = append(g.in, nil)
	return id
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return len(g.pts) }

// NumEdges returns the number of directed edges.
func (g *Graph) NumEdges() int { return g.edgeCnt }

// Point returns the geometry of node id.
func (g *Graph) Point(id NodeID) geo.Point { return g.pts[id] }

// Out returns the outgoing edges of node id. Callers must not mutate the
// returned slice.
func (g *Graph) Out(id NodeID) []Edge { return g.out[id] }

// In returns the incoming edges of node id, expressed as Edge values whose
// To field holds the *source* of the original edge.
func (g *Graph) In(id NodeID) []Edge { return g.in[id] }

// AddEdge inserts a directed edge from → to. A non-positive length is
// replaced by the haversine distance between the endpoints; speeds must be
// positive. It returns an error on invalid endpoints so network-building
// bugs surface at construction, not as corrupt searches later.
func (g *Graph) AddEdge(from, to NodeID, length, speed float64, class RoadClass) error {
	if from < 0 || int(from) >= len(g.pts) || to < 0 || int(to) >= len(g.pts) {
		return fmt.Errorf("roadnet: edge endpoints %d→%d out of range [0,%d)", from, to, len(g.pts))
	}
	if from == to {
		return fmt.Errorf("roadnet: self-loop at node %d", from)
	}
	if speed <= 0 || math.IsNaN(speed) {
		return fmt.Errorf("roadnet: non-positive speed %v on edge %d→%d", speed, from, to)
	}
	if length <= 0 {
		length = geo.Haversine(g.pts[from], g.pts[to])
		if length <= 0 {
			length = 1 // coincident nodes: keep the metric positive
		}
	}
	g.out[from] = append(g.out[from], Edge{To: to, Length: length, Speed: speed, Class: class})
	g.in[to] = append(g.in[to], Edge{To: from, Length: length, Speed: speed, Class: class})
	g.edgeCnt++
	return nil
}

// AddBidirectional inserts edges in both directions with the same
// attributes.
func (g *Graph) AddBidirectional(a, b NodeID, length, speed float64, class RoadClass) error {
	if err := g.AddEdge(a, b, length, speed, class); err != nil {
		return err
	}
	return g.AddEdge(b, a, length, speed, class)
}

// Degree returns the total degree (in + out) of node id.
func (g *Graph) Degree(id NodeID) int { return len(g.out[id]) + len(g.in[id]) }

// BBox returns the bounding box of all node geometry.
func (g *Graph) BBox() geo.BBox {
	return geo.NewBBox(g.pts...)
}

// PathPoints converts a node path into its geometry.
func (g *Graph) PathPoints(path []NodeID) []geo.Point {
	pts := make([]geo.Point, len(path))
	for i, n := range path {
		pts[i] = g.pts[n]
	}
	return pts
}

// PathLength returns the summed edge length of a node path, looking up the
// actual edge between consecutive nodes (shortest parallel edge if there
// are several). It returns an error if two consecutive nodes are not
// adjacent — a corrupted route.
func (g *Graph) PathLength(path []NodeID) (float64, error) {
	var total float64
	for i := 1; i < len(path); i++ {
		l, ok := g.edgeLength(path[i-1], path[i])
		if !ok {
			return 0, fmt.Errorf("roadnet: path step %d: no edge %d→%d", i, path[i-1], path[i])
		}
		total += l
	}
	return total, nil
}

func (g *Graph) edgeLength(from, to NodeID) (float64, bool) {
	best := math.Inf(1)
	found := false
	for _, e := range g.out[from] {
		if e.To == to && e.Length < best {
			best = e.Length
			found = true
		}
	}
	return best, found
}

// LargestComponent returns the node set of the largest weakly-connected
// component. The synthetic generator uses it to discard isolated islands
// created by random edge removal, and loaders can use it to sanitize real
// data.
func (g *Graph) LargestComponent() []NodeID {
	n := len(g.pts)
	comp := make([]int32, n)
	for i := range comp {
		comp[i] = -1
	}
	var best []NodeID
	stack := make([]NodeID, 0, 64)
	var cur int32
	for start := 0; start < n; start++ {
		if comp[start] != -1 {
			continue
		}
		var members []NodeID
		stack = append(stack[:0], NodeID(start))
		comp[start] = cur
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			members = append(members, v)
			for _, e := range g.out[v] {
				if comp[e.To] == -1 {
					comp[e.To] = cur
					stack = append(stack, e.To)
				}
			}
			for _, e := range g.in[v] {
				if comp[e.To] == -1 {
					comp[e.To] = cur
					stack = append(stack, e.To)
				}
			}
		}
		if len(members) > len(best) {
			best = members
		}
		cur++
	}
	return best
}

// InducedSubgraph returns a new graph containing only the given nodes and
// the edges among them, together with the mapping old→new node IDs
// (InvalidNode for dropped nodes).
func (g *Graph) InducedSubgraph(keep []NodeID) (*Graph, []NodeID) {
	remap := make([]NodeID, len(g.pts))
	for i := range remap {
		remap[i] = InvalidNode
	}
	sub := &Graph{}
	for _, old := range keep {
		remap[old] = sub.AddNode(g.pts[old])
	}
	for _, old := range keep {
		for _, e := range g.out[old] {
			if remap[e.To] == InvalidNode {
				continue
			}
			// Endpoints validated by construction; error impossible.
			_ = sub.AddEdge(remap[old], remap[e.To], e.Length, e.Speed, e.Class)
		}
	}
	return sub, remap
}
