package roadnet

import (
	"fmt"
	"math"

	"xar/internal/geo"
	"xar/internal/memsize"
)

// ALT implements the A*-with-Landmarks-and-Triangle-inequality speedup
// (Goldberg & Harrelson) for single-pair shortest paths. A handful of
// well-spread seed nodes ("ALT landmarks" — distinct from the XAR
// discretization's landmarks, though the idea is the same family) get
// full forward and backward distance arrays; the triangle inequality
// then yields an admissible, usually much tighter heuristic than the
// straight-line distance:
//
//	h(v) = max_L max( d(L,t) − d(L,v),  d(v,L) − d(t,L) )
//
// XAR computes shortest paths only at ride creation and booking, but a
// city-scale deployment still runs thousands of those per hour; ALT cuts
// their cost several-fold at the price of 2·k Dijkstras of preprocessing
// (see BenchmarkAblationALT).
type ALT struct {
	g    *Graph
	seed []NodeID
	fwd  [][]float64 // fwd[i][v] = d(seed_i → v)
	bwd  [][]float64 // bwd[i][v] = d(v → seed_i)
}

// MeasureMem implements memsize.Measurer. ALT tables are immutable after
// NewALT, so the walk takes no locks; the dominant cost, the 2·k dense
// distance arrays, is counted from slice headers via the walker's
// leaf-type fast path.
func (al *ALT) MeasureMem(a *memsize.Accumulator) {
	if al == nil {
		return
	}
	a.Add(al)
}

// NewALT selects k seed nodes (farthest-point spread over the graph's
// geometry, deterministic) and precomputes their distance arrays.
func NewALT(g *Graph, k int) (*ALT, error) {
	if g.NumNodes() == 0 {
		return nil, fmt.Errorf("roadnet: ALT over an empty graph")
	}
	if k <= 0 {
		k = 8
	}
	if k > g.NumNodes() {
		k = g.NumNodes()
	}
	a := &ALT{g: g}

	// Farthest-point seeding on straight-line distance: cheap and spreads
	// the seeds to the periphery, where ALT landmarks work best.
	a.seed = append(a.seed, 0)
	minD := make([]float64, g.NumNodes())
	for i := range minD {
		minD[i] = geo.Haversine(g.Point(0), g.Point(NodeID(i)))
	}
	for len(a.seed) < k {
		far, farD := NodeID(0), -1.0
		for v := 0; v < g.NumNodes(); v++ {
			if minD[v] > farD {
				farD = minD[v]
				far = NodeID(v)
			}
		}
		a.seed = append(a.seed, far)
		for v := 0; v < g.NumNodes(); v++ {
			if d := geo.Haversine(g.Point(far), g.Point(NodeID(v))); d < minD[v] {
				minD[v] = d
			}
		}
	}

	s := NewSearcher(g)
	for _, l := range a.seed {
		a.fwd = append(a.fwd, s.DistancesToAll(l))
		bwd := make([]float64, g.NumNodes())
		for i := range bwd {
			bwd[i] = math.Inf(1)
		}
		s.DistancesWithinReverse(l, math.Inf(1), func(v NodeID, d float64) bool {
			bwd[v] = d
			return true
		})
		a.bwd = append(a.bwd, bwd)
	}
	return a, nil
}

// NumSeeds returns the number of ALT landmarks.
func (a *ALT) NumSeeds() int { return len(a.seed) }

// heuristic returns the ALT lower bound on d(v → t).
func (a *ALT) heuristic(v, t NodeID) float64 {
	var h float64
	for i := range a.seed {
		// d(L→t) − d(L→v) ≤ d(v→t)  and  d(v→L) − d(t→L) ≤ d(v→t).
		if fv, ft := a.fwd[i][v], a.fwd[i][t]; !math.IsInf(fv, 1) && !math.IsInf(ft, 1) {
			if c := ft - fv; c > h {
				h = c
			}
		}
		if bv, bt := a.bwd[i][v], a.bwd[i][t]; !math.IsInf(bv, 1) && !math.IsInf(bt, 1) {
			if c := bv - bt; c > h {
				h = c
			}
		}
	}
	return h
}

// ALTSearcher carries the per-query state for ALT searches; one per
// goroutine, like Searcher.
type ALTSearcher struct {
	alt *ALT
	s   *Searcher
}

// NewSearcher creates a query context bound to the ALT tables.
func (a *ALT) NewSearcher() *ALTSearcher {
	return &ALTSearcher{alt: a, s: NewSearcher(a.g)}
}

// ShortestPath runs A* with the ALT heuristic. Results are identical to
// Searcher.ShortestPath; only the visited-node count differs.
func (as *ALTSearcher) ShortestPath(source, target NodeID) SPResult {
	if source == target {
		return SPResult{Dist: 0, Path: []NodeID{source}}
	}
	a, s := as.alt, as.s
	s.reset()
	h := func(v NodeID) float64 { return a.heuristic(v, target) }

	s.relax(source, 0, InvalidNode)
	s.queue.push(pqItem{node: source, prio: h(source)})
	for s.queue.Len() > 0 {
		it := s.queue.pop()
		v := it.node
		if v == target {
			return SPResult{Dist: s.dist[v], Path: s.buildPath(v)}
		}
		if it.prio > s.dist[v]+h(v)+1e-9 {
			continue
		}
		for _, e := range s.g.Out(v) {
			nd := s.dist[v] + e.Length
			if s.relax(e.To, nd, v) {
				s.queue.push(pqItem{node: e.To, prio: nd + h(e.To)})
			}
		}
	}
	return SPResult{Dist: math.Inf(1)}
}

// SettledNodes reports how many nodes the last search settled — the
// quantity ALT improves. Exposed for benchmarks and tests.
func (as *ALTSearcher) SettledNodes() int {
	n := 0
	for _, st := range as.s.stamp {
		if st == as.s.gen {
			n++
		}
	}
	return n
}
