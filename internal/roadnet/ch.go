package roadnet

import (
	"fmt"
	"math"
	"sort"
	"time"

	"xar/internal/memsize"
)

// This file implements contraction hierarchies (CH; Geisberger, Sanders,
// Schultes & Delling 2008) for exact single-pair shortest paths. CH
// trades a preprocessing pass — contracting nodes in importance order
// and inserting shortcut arcs that preserve all shortest distances —
// for queries that are an order of magnitude faster than A*/ALT: a
// bidirectional Dijkstra that only ever moves *upward* in the
// contraction order settles a few dozen nodes where A* settles
// thousands.
//
// The pieces:
//
//   - Ordering: nodes are contracted in a lazy-update priority queue
//     ordered by edge difference (shortcuts added minus arcs removed)
//     plus shortcut count plus deleted-neighbor count — the classic
//     heuristic mix — stratified by a geometric nested-dissection term
//     (see ndStrata) that keeps search cones near sqrt(n) on grid-like
//     networks where purely local scores degenerate. Lazy update
//     re-scores a node only when it reaches the top of the queue,
//     which is both cheap and close to an eager ordering.
//   - Witness search: before inserting shortcut u→w (bypassing v), a
//     bounded Dijkstra from u in the remaining graph (excluding v)
//     looks for a "witness" path of length ≤ the shortcut. Truncating
//     the witness search is always safe: it can only insert redundant
//     shortcuts, never lose a distance.
//   - Core + distance table: contraction stops when min(n, 2048) nodes
//     remain. Contracting the last few separator levels of a road
//     network is where CH goes quadratic — the residual core densifies
//     toward a clique, witness searches crawl, and queries would have
//     to scan those near-clique adjacency lists. Instead the residual
//     core keeps its arcs and gets an exact all-pairs distance table
//     (the residual core preserves all pairwise distances — the CH
//     invariant), turning the whole dense top of the hierarchy into
//     O(|F|·|B|) array lookups per query.
//   - Query: forward search from s over arcs into higher-ranked nodes,
//     backward search from t over the reverses of such arcs, with
//     stall-on-demand pruning; searches stop at core entry points. The
//     best of (ordinary meeting node, table-joined entry pair) gives
//     the exact distance, and shortcut middle-node expansion recovers
//     the full original-graph path.
//
// Storage is struct-of-arrays CSR: the query scans touch only the
// head/weight arrays, while the shortcut-expansion data (middle node
// plus the precomputed flat indices of the two constituent arcs) sits
// in parallel cold arrays consulted only during path unpacking, which
// makes unpacking a chain of O(1) array loads instead of binary
// searches.
//
// The CH is immutable after Build and safe for concurrent queries;
// each goroutine owns a CHSearcher (pooled by the engine), mirroring
// Searcher/ALTSearcher.

// noMiddle marks an arc of the original graph (not a shortcut).
const noMiddle = InvalidNode

// noArc marks an absent constituent-arc index (original arcs).
const noArc = int32(-1)

// chArc is one arc of the search graphs in build/load form, before
// setArcs flattens it into the struct-of-arrays CSR layout. For
// up-arcs To is the arc's head; for down-arcs (stored at the head) To
// is the *tail*, so both directions scan a flat per-node slice.
type chArc struct {
	To     NodeID
	Middle NodeID // contracted node a shortcut bypasses; noMiddle = original edge
	Weight float64
}

// CHConfig tunes preprocessing.
type CHConfig struct {
	// Budget bounds total preprocessing time; Build returns
	// ErrCHBudgetExceeded when the deadline passes mid-contraction.
	// Zero means no budget.
	Budget time.Duration
	// WitnessSettleLimit caps the nodes each witness search settles
	// (0 → 80). Lower is faster preprocessing but more (redundant)
	// shortcuts; correctness is unaffected either way.
	WitnessSettleLimit int
	// CoreSize is the number of highest-ranked nodes left uncontracted
	// and covered by the exact distance table (0 → min(n, 2048)).
	// Larger cores are empirically faster at every measured size —
	// grid-like networks lack witnesses, so deep contraction drowns in
	// shortcuts while the table answers the dense top in O(1) — but the
	// table grows quadratically (~50 MB at the 2048 cap).
	CoreSize int
}

// ErrCHBudgetExceeded is returned by BuildCH when preprocessing ran out
// of its time budget. Callers fall back to ALT.
var ErrCHBudgetExceeded = fmt.Errorf("roadnet: CH preprocessing budget exceeded")

const (
	defaultWitnessSettleLimit = 80
	defaultCoreSize           = 2048
)

// CH is a built contraction hierarchy over a Graph. Immutable; safe for
// concurrent use through per-goroutine CHSearchers.
type CH struct {
	g    *Graph
	rank []int32 // rank[v] = contraction position (higher = more important)

	// The search graphs in struct-of-arrays CSR layout. upTo/upW hold
	// arcs v→w of the augmented graph with rank[w] > rank[v] (scanned
	// by the forward search); downTo/downW hold arcs u→v with
	// rank[u] > rank[v], with To = u (scanned by the backward search).
	// upRank/downRank carry the head's rank so the query's heap pushes
	// and core tests never read the rank array at random; everything
	// path unpacking needs lives in the parallel cold upX/downX arrays.
	upOff    []int32
	downOff  []int32
	upTo     []NodeID
	downTo   []NodeID
	upW      []float64
	downW    []float64
	upRank   []int32
	downRank []int32

	// Unpack data, parallel to upTo/downTo, consolidated per arc so an
	// expansion step is one cache line: the arc weight again, the
	// shortcut middle (noMiddle = original edge), and the flat indices
	// of the two constituent arcs — Lo is from→mid in the down arrays,
	// Hi is mid→to in the up arrays; noArc for originals. Resolved once
	// in setArcs so expansion is pure array chasing.
	upX   []chExp
	downX []chExp

	// The uncontracted core: the coreK highest-ranked nodes, their
	// internal adjacency, and the exact K×K distance table with
	// predecessor links for path reconstruction (row-major by core
	// index; corePar holds the predecessor's core index, -1 at the
	// source or unreachable).
	coreK   int
	coreID  []NodeID    // core index → node
	coreIdx []int32     // node → core index, -1 outside the core
	coreOut [][]coreArc // arcs among core nodes, forward orientation
	coreD   []float64
	corePar []int32

	shortcuts int
	buildTime time.Duration
}

// MeasureMem implements memsize.Measurer. A built CH is immutable, so
// the walk takes no locks; the CSR arrays and the core distance table
// are counted from slice headers via the leaf-type fast path.
func (c *CH) MeasureMem(a *memsize.Accumulator) {
	if c == nil {
		return
	}
	a.Add(c)
}

// chExp is one arc's path-expansion record.
type chExp struct {
	W   float64 // arc weight (duplicated from upW/downW for locality)
	Mid NodeID  // shortcut middle; noMiddle = original edge
	Lo  int32   // constituent from→mid, index into the down arrays
	Hi  int32   // constituent mid→to, index into the up arrays
}

// coreArc is one arc between core nodes, carrying the flat index of the
// underlying search-graph arc so core-walk unpacking reuses the same
// constituent-index machinery.
type coreArc struct {
	To     NodeID
	Weight float64
	Idx    int32 // index into the up (Up=true) or down arrays
	Up     bool
}

// Graph returns the road graph the hierarchy was built on.
func (ch *CH) Graph() *Graph { return ch.g }

// NumShortcuts returns the number of shortcut arcs in the hierarchy.
func (ch *CH) NumShortcuts() int { return ch.shortcuts }

// CoreSize returns the number of uncontracted nodes covered by the
// distance table.
func (ch *CH) CoreSize() int { return ch.coreK }

// NumArcs returns the total arc count of the search graphs (original
// deduplicated arcs plus shortcuts).
func (ch *CH) NumArcs() int { return len(ch.upTo) + len(ch.downTo) }

// setArcs flattens per-node arc lists into the struct-of-arrays CSR
// layout, sorting each node's arcs by head, then resolves every
// shortcut's constituent-arc indices and validates the arcs against
// the graph: duplicate arcs, unresolvable constituents, or an original
// arc whose weight is not the graph's edge length are all structural
// corruption (BuildCH never produces them, so they only trip on
// persisted input).
func (ch *CH) setArcs(up, down [][]chArc) error {
	n := len(up)
	ch.upOff = make([]int32, n+1)
	ch.downOff = make([]int32, n+1)
	nu, nd := 0, 0
	for v := 0; v < n; v++ {
		nu += len(up[v])
		nd += len(down[v])
	}
	ch.upTo = make([]NodeID, 0, nu)
	ch.upW = make([]float64, 0, nu)
	ch.upRank = make([]int32, 0, nu)
	ch.upX = make([]chExp, 0, nu)
	ch.downTo = make([]NodeID, 0, nd)
	ch.downW = make([]float64, 0, nd)
	ch.downRank = make([]int32, 0, nd)
	ch.downX = make([]chExp, 0, nd)
	for v := 0; v < n; v++ {
		sortArcs(up[v])
		sortArcs(down[v])
		for i, a := range up[v] {
			if i > 0 && a.To == up[v][i-1].To {
				return fmt.Errorf("duplicate arc %d→%d", v, a.To)
			}
			ch.upTo = append(ch.upTo, a.To)
			ch.upW = append(ch.upW, a.Weight)
			ch.upRank = append(ch.upRank, ch.rank[a.To])
			ch.upX = append(ch.upX, chExp{W: a.Weight, Mid: a.Middle})
		}
		for i, a := range down[v] {
			if i > 0 && a.To == down[v][i-1].To {
				return fmt.Errorf("duplicate arc %d→%d", a.To, v)
			}
			ch.downTo = append(ch.downTo, a.To)
			ch.downW = append(ch.downW, a.Weight)
			ch.downRank = append(ch.downRank, ch.rank[a.To])
			ch.downX = append(ch.downX, chExp{W: a.Weight, Mid: a.Middle})
		}
		ch.upOff[v+1] = int32(len(ch.upTo))
		ch.downOff[v+1] = int32(len(ch.downTo))
	}
	// Resolve constituents. An arc a→b with middle m decomposes into
	// a→m (a down-arc of m, since m ranks below a) and m→b (an up-arc
	// of m); successful resolution therefore also proves the middle
	// ranks strictly below both endpoints, which is what guarantees
	// expansion terminates. Original arcs must match the graph's
	// (minimum parallel) edge length exactly — the query accumulates
	// Dist from these weights, so this is what keeps Dist equal to
	// PathLength(Path) bitwise.
	resolve := func(from, to, mid NodeID, w float64) (int32, int32, error) {
		if mid == noMiddle {
			if l, ok := ch.g.edgeLength(from, to); !ok || l != w {
				return 0, 0, fmt.Errorf("arc %d→%d weight %v does not match the graph", from, to, w)
			}
			return noArc, noArc, nil
		}
		lo := ch.arcIndex(ch.downOff, ch.downTo, mid, from)
		hi := ch.arcIndex(ch.upOff, ch.upTo, mid, to)
		if lo == noArc || hi == noArc {
			return 0, 0, fmt.Errorf("shortcut %d→%d middle %d has no constituent arcs", from, to, mid)
		}
		if ch.downW[lo]+ch.upW[hi] != w {
			return 0, 0, fmt.Errorf("shortcut %d→%d weight %v does not match its constituents", from, to, w)
		}
		return lo, hi, nil
	}
	for v := 0; v < n; v++ {
		for i := ch.upOff[v]; i < ch.upOff[v+1]; i++ {
			lo, hi, err := resolve(NodeID(v), ch.upTo[i], ch.upX[i].Mid, ch.upW[i])
			if err != nil {
				return err
			}
			ch.upX[i].Lo, ch.upX[i].Hi = lo, hi
		}
		for i := ch.downOff[v]; i < ch.downOff[v+1]; i++ {
			lo, hi, err := resolve(ch.downTo[i], NodeID(v), ch.downX[i].Mid, ch.downW[i])
			if err != nil {
				return err
			}
			ch.downX[i].Lo, ch.downX[i].Hi = lo, hi
		}
	}
	return nil
}

// arcIndex binary-searches node v's slice of a CSR arc array for the
// arc to head, returning its flat index or noArc.
func (ch *CH) arcIndex(off []int32, to []NodeID, v, head NodeID) int32 {
	lo, hi := off[v], off[v+1]
	for lo < hi {
		m := (lo + hi) / 2
		if to[m] < head {
			lo = m + 1
		} else {
			hi = m
		}
	}
	if lo < off[v+1] && to[lo] == head {
		return lo
	}
	return noArc
}

// BuildTime returns how long preprocessing took.
func (ch *CH) BuildTime() time.Duration { return ch.buildTime }

// chBuilder carries the mutable state of preprocessing: the "core"
// graph of not-yet-contracted nodes, which shrinks as nodes contract
// and grows shortcut arcs.
type chBuilder struct {
	g          *Graph
	out        [][]chArc // arcs of the augmented graph, forward
	in         [][]chArc // arcs of the augmented graph, reverse (To = source)
	contracted []bool
	rank       []int32
	delNbr     []int32 // contracted-neighbor count (priority term)
	level      []int32 // hierarchy depth bound (priority term)
	stratum    []int32 // nested-dissection stratum (dominant priority term)
	settleCap  int

	// Witness-search scratch (one bounded Dijkstra per incoming arc of
	// the node under contraction).
	wdist  []float64
	wstamp []uint32
	wgen   uint32
	wq     pq
}

// BuildCH runs CH preprocessing over g. The graph must be non-empty;
// parallel arcs are deduplicated to their minimum length (which is what
// every shortest-path search effectively uses anyway).
func BuildCH(g *Graph, cfg CHConfig) (*CH, error) {
	n := g.NumNodes()
	if n == 0 {
		return nil, fmt.Errorf("roadnet: CH over an empty graph")
	}
	start := time.Now()
	var deadline time.Time
	if cfg.Budget > 0 {
		deadline = start.Add(cfg.Budget)
	}
	coreK := cfg.CoreSize
	if coreK <= 0 {
		coreK = defaultCoreSize
	}
	if coreK > n {
		coreK = n
	}
	b := &chBuilder{
		g:          g,
		out:        make([][]chArc, n),
		in:         make([][]chArc, n),
		contracted: make([]bool, n),
		rank:       make([]int32, n),
		delNbr:     make([]int32, n),
		level:      make([]int32, n),
		settleCap:  cfg.WitnessSettleLimit,
		wdist:      make([]float64, n),
		wstamp:     make([]uint32, n),
	}
	if b.settleCap <= 0 {
		b.settleCap = defaultWitnessSettleLimit
	}
	b.stratum = ndStrata(g)
	for v := 0; v < n; v++ {
		for _, e := range g.Out(NodeID(v)) {
			b.addArc(NodeID(v), e.To, e.Length, noMiddle)
		}
	}

	// Initial priorities, then lazy-update contraction: a popped node is
	// re-scored and contracted only if it is still no worse than the new
	// queue head; otherwise it is re-inserted with its fresh score.
	// Contraction stops with coreK nodes left — the residual core.
	var queue pq
	for v := 0; v < n; v++ {
		queue.push(pqItem{node: NodeID(v), prio: b.priority(NodeID(v))})
	}
	order := int32(0)
	stop := int32(n - coreK)
	for order < stop && queue.Len() > 0 {
		it := queue.pop()
		v := it.node
		p := b.priority(v)
		if queue.Len() > 0 && p > queue[0].prio {
			queue.push(pqItem{node: v, prio: p})
			continue
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			return nil, fmt.Errorf("%w (contracted %d/%d nodes in %v)",
				ErrCHBudgetExceeded, order, n, time.Since(start).Round(time.Millisecond))
		}
		b.contract(v)
		b.rank[v] = order
		order++
	}
	// Core nodes share the top ranks; their relative order is arbitrary
	// (queries never walk up-arcs inside the core), so assign by node id
	// for determinism.
	for v := 0; v < n; v++ {
		if !b.contracted[v] {
			b.rank[v] = order
			order++
		}
	}

	ch := &CH{
		g:     g,
		rank:  b.rank,
		coreK: coreK,
	}
	up := make([][]chArc, n)
	down := make([][]chArc, n)
	for u := 0; u < n; u++ {
		for _, a := range b.out[u] {
			if a.Middle != noMiddle {
				ch.shortcuts++
			}
			if b.rank[a.To] > b.rank[u] {
				up[u] = append(up[u], a)
			} else {
				down[a.To] = append(down[a.To], chArc{To: NodeID(u), Middle: a.Middle, Weight: a.Weight})
			}
		}
	}
	if err := ch.setArcs(up, down); err != nil {
		return nil, fmt.Errorf("roadnet: CH build produced inconsistent arcs: %w", err)
	}
	// The distance table (one Dijkstra per core node) is the dominant
	// preprocessing cost when little or nothing gets contracted, so the
	// budget covers it too.
	if !deadline.IsZero() && time.Now().After(deadline) {
		return nil, fmt.Errorf("%w (contracted %d/%d nodes in %v)",
			ErrCHBudgetExceeded, order, n, time.Since(start).Round(time.Millisecond))
	}
	ch.finalizeCore()
	ch.buildTime = time.Since(start)
	return ch, nil
}

// finalizeCore derives the core node set from ranks, collects the arcs
// among core nodes, and fills the exact distance/predecessor table with
// one Dijkstra per core node. Shared by BuildCH and LoadCH (the table
// is recomputed on load rather than persisted: it is fully determined
// by the arcs, and K Dijkstras over a few-hundred-node core are
// milliseconds).
func (ch *CH) finalizeCore() {
	n := len(ch.rank)
	coreFloor := int32(n - ch.coreK)
	// Core indices are rank-derived (ci = rank - coreFloor), so the
	// query can compute an entry's table index from the rank it already
	// holds in its heap item, without a random array read.
	ch.coreID = make([]NodeID, ch.coreK)
	ch.coreIdx = make([]int32, n)
	for v := 0; v < n; v++ {
		if ch.rank[v] >= coreFloor {
			ci := ch.rank[v] - coreFloor
			ch.coreIdx[v] = ci
			ch.coreID[ci] = NodeID(v)
		} else {
			ch.coreIdx[v] = -1
		}
	}
	k := len(ch.coreID)
	// Core arcs: every arc between two core nodes appears either in
	// up[u] (head ranked above u) or in down[w] (tail ranked above w).
	ch.coreOut = make([][]coreArc, k)
	for ci, v := range ch.coreID {
		for i := ch.upOff[v]; i < ch.upOff[v+1]; i++ {
			if ch.coreIdx[ch.upTo[i]] >= 0 {
				ch.coreOut[ci] = append(ch.coreOut[ci], coreArc{To: ch.upTo[i], Weight: ch.upW[i], Idx: i, Up: true})
			}
		}
	}
	for _, v := range ch.coreID {
		for i := ch.downOff[v]; i < ch.downOff[v+1]; i++ {
			if ui := ch.coreIdx[ch.downTo[i]]; ui >= 0 {
				ch.coreOut[ui] = append(ch.coreOut[ui], coreArc{To: v, Weight: ch.downW[i], Idx: i, Up: false})
			}
		}
	}
	for _, arcs := range ch.coreOut {
		sort.Slice(arcs, func(i, j int) bool { return arcs[i].To < arcs[j].To })
	}
	ch.coreD = make([]float64, k*k)
	ch.corePar = make([]int32, k*k)
	var q pq
	for src := 0; src < k; src++ {
		dist := ch.coreD[src*k : (src+1)*k]
		par := ch.corePar[src*k : (src+1)*k]
		for i := range dist {
			dist[i] = math.Inf(1)
			par[i] = -1
		}
		dist[src] = 0
		q = q[:0]
		q.push(pqItem{node: NodeID(src), prio: 0})
		for q.Len() > 0 {
			it := q.pop()
			ci := it.node
			if it.prio > dist[ci] {
				continue
			}
			for _, a := range ch.coreOut[ci] {
				cj := ch.coreIdx[a.To]
				if nd := dist[ci] + a.Weight; nd < dist[cj] {
					dist[cj] = nd
					par[cj] = int32(ci)
					q.push(pqItem{node: NodeID(cj), prio: nd})
				}
			}
		}
	}
}

// addArc inserts arc u→w (or lowers an existing parallel arc to the new
// weight). Keeping only the minimum parallel arc preserves the shortest-
// path metric and keeps the search graphs small.
func (b *chBuilder) addArc(u, w NodeID, weight float64, middle NodeID) {
	for i := range b.out[u] {
		if b.out[u][i].To == w {
			if weight < b.out[u][i].Weight {
				b.out[u][i].Weight = weight
				b.out[u][i].Middle = middle
				for j := range b.in[w] {
					if b.in[w][j].To == u {
						b.in[w][j].Weight = weight
						b.in[w][j].Middle = middle
						break
					}
				}
			}
			return
		}
	}
	b.out[u] = append(b.out[u], chArc{To: w, Middle: middle, Weight: weight})
	b.in[w] = append(b.in[w], chArc{To: u, Middle: middle, Weight: weight})
}

// priority scores v for the contraction order. The nested-dissection
// stratum dominates (its weight exceeds any achievable local score), so
// contraction proceeds stratum by stratum; within a stratum the classic
// local mix — edge difference, shortcut count, contracted-neighbor
// count, hierarchy depth — spreads contraction uniformly. Lower
// contracts first.
func (b *chBuilder) priority(v NodeID) float64 {
	shortcuts := b.simulate(v, false)
	removed := 0
	for _, a := range b.in[v] {
		if !b.contracted[a.To] {
			removed++
		}
	}
	for _, a := range b.out[v] {
		if !b.contracted[a.To] {
			removed++
		}
	}
	local := chWeightED*(shortcuts-removed) + chWeightSC*shortcuts +
		chWeightDN*int(b.delNbr[v]) + chWeightLV*int(b.level[v])
	return ndStratumWeight*float64(b.stratum[v]) + float64(local)
}

// contract removes v from the core, inserting the shortcuts needed to
// preserve distances among its uncontracted neighbors.
func (b *chBuilder) contract(v NodeID) {
	b.simulate(v, true)
	b.contracted[v] = true
	bump := func(u NodeID) {
		if !b.contracted[u] {
			b.delNbr[u]++
			if b.level[v]+1 > b.level[u] {
				b.level[u] = b.level[v] + 1
			}
		}
	}
	for _, a := range b.in[v] {
		bump(a.To)
	}
	for _, a := range b.out[v] {
		bump(a.To)
	}
}

// simulate walks v's uncontracted in/out neighbor pairs, running one
// witness search per in-neighbor, and either counts the shortcuts a
// contraction would need (insert=false) or inserts them (insert=true).
func (b *chBuilder) simulate(v NodeID, insert bool) int {
	var maxOut float64
	anyOut := false
	for _, a := range b.out[v] {
		if !b.contracted[a.To] {
			anyOut = true
			if a.Weight > maxOut {
				maxOut = a.Weight
			}
		}
	}
	if !anyOut {
		return 0
	}
	count := 0
	for _, ia := range b.in[v] {
		u := ia.To
		if b.contracted[u] {
			continue
		}
		b.witness(u, v, ia.Weight+maxOut)
		for _, oa := range b.out[v] {
			w := oa.To
			if b.contracted[w] || w == u {
				continue
			}
			sc := ia.Weight + oa.Weight
			// A settled witness label is an upper bound on d(u,w)
			// without v; if it already beats the shortcut, skip it.
			if b.wstamp[w] == b.wgen && b.wdist[w] <= sc+1e-9 {
				continue
			}
			count++
			if insert {
				b.addArc(u, w, sc, v)
			}
		}
	}
	return count
}

// witness runs the bounded Dijkstra from u over the uncontracted core
// excluding v, stopping past maxW or after the settle cap.
func (b *chBuilder) witness(u, v NodeID, maxW float64) {
	b.wgen++
	if b.wgen == 0 {
		for i := range b.wstamp {
			b.wstamp[i] = 0
		}
		b.wgen = 1
	}
	b.wq = b.wq[:0]
	b.wdist[u] = 0
	b.wstamp[u] = b.wgen
	b.wq.push(pqItem{node: u, prio: 0})
	settled := 0
	for b.wq.Len() > 0 {
		it := b.wq.pop()
		x := it.node
		if it.prio > b.wdist[x]+1e-9 {
			continue
		}
		if it.prio > maxW {
			return
		}
		settled++
		if settled > b.settleCap {
			return
		}
		for _, a := range b.out[x] {
			y := a.To
			if y == v || b.contracted[y] {
				continue
			}
			nd := b.wdist[x] + a.Weight
			if nd > maxW {
				continue
			}
			if b.wstamp[y] != b.wgen || nd < b.wdist[y] {
				b.wstamp[y] = b.wgen
				b.wdist[y] = nd
				b.wq.push(pqItem{node: y, prio: nd})
			}
		}
	}
}

// Priority-mix weights. The stratum term dominates (ndStratumWeight is
// far above any achievable local score), so contraction proceeds
// stratum by stratum with the local ED/SC/DN/LV mix ordering nodes
// inside each stratum.
const (
	chWeightED      = 4
	chWeightSC      = 1
	chWeightDN      = 2
	chWeightLV      = 3
	ndStratumWeight = 1 << 24
)

// ndLeafSize stops the dissection recursion: regions at or below this
// size form the bottom stratum, ordered purely by the local heuristic.
const ndLeafSize = 24

// ndStrata computes a nested-dissection stratification of the graph
// from its node coordinates: regions are recursively bisected along
// their wider geometric extent, and the nodes covering the cut (one
// endpoint of every crossing edge) form a separator placed in a stratum
// above both halves. Contracting bottom strata first is what keeps
// upward search cones near sqrt(n) on grid-like road networks, where a
// purely local edge-difference order famously degenerates — local
// scores cannot see that a node sits on the only crossing of a region
// boundary. Geometry is a proxy for true graph bisection, but road
// networks are embedded planar-ish graphs, where the two agree closely.
func ndStrata(g *Graph) []int32 {
	n := g.NumNodes()
	stratum := make([]int32, n)
	mark := make([]int32, n)
	nodes := make([]NodeID, n)
	for i := range nodes {
		nodes[i] = NodeID(i)
	}
	nextMark := int32(1)
	// rec stratifies one region and returns its height: leaf regions are
	// height 0, and a region's separator sits at height 1 + max(halves),
	// strictly above everything inside either half.
	var rec func(reg []NodeID) int32
	rec = func(reg []NodeID) int32 {
		if len(reg) <= ndLeafSize {
			return 0
		}
		var minLat, maxLat, minLng, maxLng float64
		for i, v := range reg {
			p := g.pts[v]
			if i == 0 {
				minLat, maxLat, minLng, maxLng = p.Lat, p.Lat, p.Lng, p.Lng
				continue
			}
			minLat = math.Min(minLat, p.Lat)
			maxLat = math.Max(maxLat, p.Lat)
			minLng = math.Min(minLng, p.Lng)
			maxLng = math.Max(maxLng, p.Lng)
		}
		byLat := maxLat-minLat >= maxLng-minLng
		sort.Slice(reg, func(i, j int) bool {
			pi, pj := g.pts[reg[i]], g.pts[reg[j]]
			if byLat {
				return pi.Lat < pj.Lat
			}
			return pi.Lng < pj.Lng
		})
		half := reg[:len(reg)/2]
		rest := reg[len(reg)/2:]
		markA, markB := nextMark, nextMark+1
		nextMark += 2
		for _, v := range half {
			mark[v] = markA
		}
		for _, v := range rest {
			mark[v] = markB
		}
		// Separator: nodes of the first half with an arc (either
		// direction) into the second. Removing them cuts every crossing
		// edge, so the halves are independent below this stratum.
		crosses := func(v NodeID) bool {
			for _, e := range g.out[v] {
				if mark[e.To] == markB {
					return true
				}
			}
			for _, e := range g.in[v] {
				if mark[e.To] == markB {
					return true
				}
			}
			return false
		}
		interior := half[:0]
		var sep []NodeID
		for _, v := range half {
			if crosses(v) {
				sep = append(sep, v)
			} else {
				interior = append(interior, v)
			}
		}
		hA := rec(interior)
		hB := rec(rest)
		h := 1 + hA
		if hB >= h {
			h = 1 + hB
		}
		for _, v := range sep {
			stratum[v] = h
		}
		return h
	}
	rec(nodes)
	return stratum
}

// rqItem/rq is the rank-ordered work heap of one query direction. The
// upward search graphs are DAGs in rank, so nodes can be processed in
// increasing *rank* order instead of distance order: every in-arc of a
// node comes from a lower rank and is relaxed before the node pops, so
// its label is final at pop time with each node pushed exactly once —
// no duplicate heap entries, no stale pops, and int32 comparisons
// instead of float64.
type rqItem struct {
	rank int32
	node NodeID
}

type rq []rqItem

func (q *rq) push(it rqItem) {
	*q = append(*q, it)
	h := *q
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h[parent].rank <= h[i].rank {
			break
		}
		h[parent], h[i] = h[i], h[parent]
		i = parent
	}
}

func (q *rq) pop() rqItem {
	h := *q
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	*q = h[:last]
	h = h[:last]
	i := 0
	for {
		l := 2*i + 1
		if l >= last {
			break
		}
		if r := l + 1; r < last && h[r].rank < h[l].rank {
			l = r
		}
		if h[i].rank <= h[l].rank {
			break
		}
		h[i], h[l] = h[l], h[i]
		i = l
	}
	return top
}

// chLabel is one node's hot per-query search state — a 16-byte struct,
// four to a cache line, touched by every settle, stall check, and
// relaxation. The parent pointers live in the separate cold chPrev
// array, written only on improvement and read only during unpacking.
type chLabel struct {
	dist  float64
	stamp uint32 // == side.gen when the label is live
}

// chPrev records the arc that set a node's label: the other endpoint
// and the arc's flat index in the side's arc arrays.
type chPrev struct {
	to  NodeID
	idx int32
}

// chEntry is one core entry point reached by a search cone: the node
// and its (rank-derived) index into the core distance table.
type chEntry struct {
	node NodeID
	ci   int32
}

// chSide is one direction of the bidirectional query: distance labels
// with O(1) generation reset, the rank-ordered work heap, the nodes
// reached, and the core entry points.
type chSide struct {
	labels  []chLabel
	prev    []chPrev
	gen     uint32
	queue   rq
	reached []NodeID  // every labeled node (== every processed node)
	entries []chEntry // core nodes reached
}

func (s *chSide) reset() {
	s.gen++
	if s.gen == 0 {
		for i := range s.labels {
			s.labels[i].stamp = 0
		}
		s.gen = 1
	}
	s.queue = s.queue[:0]
	s.reached = s.reached[:0]
	s.entries = s.entries[:0]
}

func (s *chSide) seen(v NodeID) bool { return s.labels[v].stamp == s.gen }

// relax lowers v's label, reporting whether v was newly reached (the
// caller then pushes it — once; later improvements only rewrite the
// label, which is safe because v's rank guarantees it pops after every
// node that can improve it).
func (s *chSide) relax(v NodeID, d float64, from NodeID, idx int32) bool {
	lb := &s.labels[v]
	if lb.stamp != s.gen {
		lb.stamp = s.gen
		lb.dist = d
		s.prev[v] = chPrev{to: from, idx: idx}
		return true
	}
	if d < lb.dist {
		lb.dist = d
		s.prev[v] = chPrev{to: from, idx: idx}
	}
	return false
}

// CHSearcher carries the per-query scratch of CH searches; one per
// goroutine, pooled like Searcher/ALTSearcher. Steady-state queries
// allocate only the returned path.
type CHSearcher struct {
	ch       *CH
	fwd      chSide
	bwd      chSide
	segs     []chSeg  // unpack stack
	coreSeq  []int32  // core-chain scratch (table-joined paths)
	pathBuf  []NodeID // expansion scratch; the result is one exact-size copy
	pathDist float64  // Dist accumulator, filled during expansion
}

// chSeg is one pending arc of the path-unpacking stack: the flat index
// of a search-graph arc (up or down arrays) and the head node it
// expands toward.
type chSeg struct {
	to  NodeID
	idx int32
	up  bool
}

// NewSearcher creates a query context bound to the hierarchy.
func (ch *CH) NewSearcher() *CHSearcher {
	n := ch.g.NumNodes()
	return &CHSearcher{
		ch:  ch,
		fwd: chSide{labels: make([]chLabel, n), prev: make([]chPrev, n)},
		bwd: chSide{labels: make([]chLabel, n), prev: make([]chPrev, n)},
	}
}

// SettledNodes reports how many nodes the last query settled across
// both directions — the quantity CH shrinks. For benchmarks and tests.
func (cs *CHSearcher) SettledNodes() int { return len(cs.fwd.reached) + len(cs.bwd.reached) }

// ShortestPath returns the exact shortest path from source to target,
// identical (up to floating-point association) to Searcher.ShortestPath.
// It drains both upward search cones in rank order with stall-on-demand
// pruning, takes the best meeting node over the (now final) labels,
// joins the core entry points through the distance table, and unpacks
// shortcuts into the original-graph node sequence. Dist is accumulated
// left-to-right over the expanded original arcs, whose weights are
// validated against the graph in setArcs, so Dist always equals
// PathLength(Path) bitwise.
func (cs *CHSearcher) ShortestPath(source, target NodeID) SPResult {
	if source == target {
		return SPResult{Dist: 0, Path: []NodeID{source}}
	}
	ch := cs.ch
	cs.fwd.reset()
	cs.bwd.reset()
	cs.fwd.relax(source, 0, InvalidNode, noArc)
	cs.bwd.relax(target, 0, InvalidNode, noArc)
	cs.fwd.queue.push(rqItem{rank: ch.rank[source], node: source})
	cs.bwd.queue.push(rqItem{rank: ch.rank[target], node: target})
	cs.drain(&cs.fwd, ch.upOff, ch.upTo, ch.upW, ch.upRank, ch.downOff, ch.downTo, ch.downW)
	cs.drain(&cs.bwd, ch.downOff, ch.downTo, ch.downW, ch.downRank, ch.upOff, ch.upTo, ch.upW)

	// Both cones are drained, so every label is final: the best meeting
	// node over the intersection of the reached sets is exact.
	best := math.Inf(1)
	meet := InvalidNode
	for _, v := range cs.fwd.reached {
		if cs.bwd.seen(v) {
			if d := cs.fwd.labels[v].dist + cs.bwd.labels[v].dist; d < best {
				best = d
				meet = v
			}
		}
	}

	// Join the core entry points through the distance table. Entries are
	// sorted by label so both loops break as soon as the labels alone
	// (the table adds ≥ 0) can no longer improve best — the outer loop
	// additionally adds the minimum backward label, which prunes most of
	// the quadratic sweep (and its cache-missing table reads) away.
	k := len(ch.coreID)
	tabX, tabY := int32(-1), int32(-1)
	if len(cs.fwd.entries) > 0 && len(cs.bwd.entries) > 0 {
		sortByDist(cs.fwd.entries, cs.fwd.labels)
		sortByDist(cs.bwd.entries, cs.bwd.labels)
		db0 := cs.bwd.labels[cs.bwd.entries[0].node].dist
		for _, ex := range cs.fwd.entries {
			df := cs.fwd.labels[ex.node].dist
			if df+db0 >= best {
				break
			}
			row := ch.coreD[int(ex.ci)*k : (int(ex.ci)+1)*k]
			for _, ey := range cs.bwd.entries {
				db := cs.bwd.labels[ey.node].dist
				if df+db >= best {
					break
				}
				if d := df + row[ey.ci] + db; d < best {
					best = d
					tabX, tabY = ex.ci, ey.ci
					meet = InvalidNode
				}
			}
		}
	}

	if math.IsInf(best, 1) {
		return SPResult{Dist: math.Inf(1)}
	}
	var path []NodeID
	if meet != InvalidNode {
		path = cs.unpack(source, target, meet)
	} else {
		path = cs.unpackVia(source, target, tabX, tabY)
	}
	return SPResult{Dist: cs.pathDist, Path: path}
}

// drain processes side's entire upward cone in rank order. off/to/w is
// side's search graph (up for forward, down for backward), soff/sto/sw
// the opposite one, used for the stall-on-demand check: a label that an
// opposite-direction arc from a higher-ranked node can improve is
// provably not on a shortest up-down path, so its out-arcs are never
// relaxed (the higher node's label may itself not be final yet, but
// labels only decrease, so the check can only under-prune — never
// wrongly stall). Core nodes are recorded as entry points and not
// expanded — the distance table covers all routing above them.
func (cs *CHSearcher) drain(side *chSide, off []int32, to []NodeID, w []float64, toRank []int32, soff []int32, sto []NodeID, sw []float64) {
	coreFloor := int32(len(cs.ch.rank) - cs.ch.coreK)
	for len(side.queue) > 0 {
		it := side.queue.pop()
		v := it.node
		side.reached = append(side.reached, v)
		if it.rank >= coreFloor {
			side.entries = append(side.entries, chEntry{node: v, ci: it.rank - coreFloor})
			continue
		}
		dv := side.labels[v].dist
		stalled := false
		for i := soff[v]; i < soff[v+1]; i++ {
			if lb := &side.labels[sto[i]]; lb.stamp == side.gen && lb.dist+sw[i] < dv {
				stalled = true
				break
			}
		}
		if stalled {
			continue
		}
		for i := off[v]; i < off[v+1]; i++ {
			u := to[i]
			if side.relax(u, dv+w[i], v, i) {
				side.queue.push(rqItem{rank: toRank[i], node: u})
			}
		}
	}
}

// unpack reconstructs the original-graph node sequence source…target
// when the searches met at an ordinary node, expanding shortcut arcs
// via their precomputed constituent indices.
func (cs *CHSearcher) unpack(source, target, meet NodeID) []NodeID {
	cs.segs = cs.segs[:0]
	cs.appendFwdChain(source, meet)
	cs.appendBwdChain(meet, target)
	return cs.expandSegs(source)
}

// unpackVia reconstructs a table-joined path: forward chain source→
// entry tabX, the core walk tabX→tabY from the predecessor table, then
// the backward chain from exit tabY→target.
func (cs *CHSearcher) unpackVia(source, target NodeID, tabX, tabY int32) []NodeID {
	ch := cs.ch
	cs.segs = cs.segs[:0]
	cs.appendFwdChain(source, ch.coreID[tabX])
	// Core chain entry→exit: walk predecessors from exit back to entry,
	// then emit the core arcs in forward order.
	cs.coreSeq = cs.coreSeq[:0]
	k := int32(len(ch.coreID))
	for cj := tabY; cj != tabX; cj = ch.corePar[tabX*k+cj] {
		cs.coreSeq = append(cs.coreSeq, cj)
	}
	cs.coreSeq = append(cs.coreSeq, tabX)
	for i := len(cs.coreSeq) - 1; i > 0; i-- {
		from, to := cs.coreSeq[i], cs.coreSeq[i-1]
		a := findCoreArc(ch.coreOut[from], ch.coreID[to])
		cs.segs = append(cs.segs, chSeg{to: ch.coreID[to], idx: a.Idx, up: a.Up})
	}
	cs.appendBwdChain(ch.coreID[tabY], target)
	return cs.expandSegs(source)
}

// appendFwdChain pushes the forward search-tree chain source→a (the
// prev pointers walk backward, so the collected segs are reversed in
// place to forward order).
func (cs *CHSearcher) appendFwdChain(source, a NodeID) {
	head := len(cs.segs)
	for v := a; v != source; v = cs.fwd.prev[v].to {
		cs.segs = append(cs.segs, chSeg{to: v, idx: cs.fwd.prev[v].idx, up: true})
	}
	for i, j := head, len(cs.segs)-1; i < j; i, j = i+1, j-1 {
		cs.segs[i], cs.segs[j] = cs.segs[j], cs.segs[i]
	}
}

// appendBwdChain pushes the backward search-tree chain b→target, whose
// prev pointers already walk forward.
func (cs *CHSearcher) appendBwdChain(b, target NodeID) {
	for v := b; v != target; {
		p := cs.bwd.prev[v]
		cs.segs = append(cs.segs, chSeg{to: p.to, idx: p.idx, up: false})
		v = p.to
	}
}

// findCoreArc binary-searches a core adjacency list (sorted by head)
// for the arc to the given head; the predecessor table only ever names
// arcs that exist.
func findCoreArc(arcs []coreArc, to NodeID) coreArc {
	lo, hi := 0, len(arcs)
	for lo < hi {
		m := (lo + hi) / 2
		if arcs[m].To < to {
			lo = m + 1
		} else {
			hi = m
		}
	}
	return arcs[lo]
}

// sortByDist insertion-sorts a small entry list ascending by label.
// Entry lists are a couple dozen nodes, where insertion sort beats
// sort.Slice and allocates nothing.
func sortByDist(entries []chEntry, labels []chLabel) {
	for i := 1; i < len(entries); i++ {
		e := entries[i]
		d := labels[e.node].dist
		j := i - 1
		for j >= 0 && labels[entries[j].node].dist > d {
			entries[j+1] = entries[j]
			j--
		}
		entries[j+1] = e
	}
}

// sortArcs orders an arc list by head for binary search; parallel arcs
// (possible only in hand-crafted or persisted inputs, never from
// BuildCH's deduplicating addArc) keep the minimum weight first so
// lookups find the arc a Dijkstra would have used.
func sortArcs(arcs []chArc) {
	sort.Slice(arcs, func(i, j int) bool {
		if arcs[i].To != arcs[j].To {
			return arcs[i].To < arcs[j].To
		}
		return arcs[i].Weight < arcs[j].Weight
	})
}

// expandSegs expands the pending seg chain into the original-graph node
// sequence starting at source, accumulating Dist along the way. The
// expansion grows a persistent scratch buffer (its length is unknown
// until shortcuts unfold); the returned path is one exact-size copy.
func (cs *CHSearcher) expandSegs(source NodeID) []NodeID {
	buf := append(cs.pathBuf[:0], source)
	cs.pathDist = 0
	for _, seg := range cs.segs {
		buf = cs.expandArc(buf, seg.up, seg.idx, seg.to)
	}
	cs.pathBuf = buf
	path := make([]NodeID, len(buf))
	copy(path, buf)
	return path
}

// expandArc appends the original-graph nodes of the arc at flat index
// idx (exclusive of its tail, ending at to), recursing into shortcut
// halves via the precomputed constituent indices: lo is the down-array
// tail→middle half, hi the up-array middle→head half. Resolution in
// setArcs proved each middle ranks strictly below both endpoints, so
// the recursion terminates. Original arcs accumulate their weight —
// validated to equal the graph's edge length — into pathDist, in path
// order, which keeps Dist bitwise equal to PathLength.
func (cs *CHSearcher) expandArc(path []NodeID, up bool, idx int32, to NodeID) []NodeID {
	var e *chExp
	if up {
		e = &cs.ch.upX[idx]
	} else {
		e = &cs.ch.downX[idx]
	}
	if e.Mid == noMiddle {
		cs.pathDist += e.W
		return append(path, to)
	}
	path = cs.expandArc(path, false, e.Lo, e.Mid)
	return cs.expandArc(path, true, e.Hi, to)
}
