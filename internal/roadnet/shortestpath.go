package roadnet

import (
	"math"

	"xar/internal/geo"
)

// pqItem is one entry of the binary-heap priority queue used by all the
// searches in this file. prio is the ordering key (distance, or distance
// plus heuristic for A*).
type pqItem struct {
	node NodeID
	prio float64
}

// pq is a hand-rolled typed binary min-heap on prio. container/heap
// would box every pqItem through interface{} (one allocation per push on
// the Dijkstra/A* hot path); the typed version reuses one backing slice
// across searches and allocates only when the slice grows.
type pq []pqItem

func (q pq) Len() int { return len(q) }

// push inserts it and sifts it up.
func (q *pq) push(it pqItem) {
	*q = append(*q, it)
	h := *q
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h[parent].prio <= h[i].prio {
			break
		}
		h[parent], h[i] = h[i], h[parent]
		i = parent
	}
}

// pop removes and returns the minimum-prio item.
func (q *pq) pop() pqItem {
	h := *q
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h = h[:n]
	*q = h
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && h[l].prio < h[small].prio {
			small = l
		}
		if r < n && h[r].prio < h[small].prio {
			small = r
		}
		if small == i {
			break
		}
		h[i], h[small] = h[small], h[i]
		i = small
	}
	return top
}

// SPResult is the outcome of a single-pair shortest-path search.
type SPResult struct {
	Dist float64  // meters; +Inf if unreachable
	Path []NodeID // from source to target inclusive; nil if unreachable
}

// Reachable reports whether the search found the target.
func (r SPResult) Reachable() bool { return !math.IsInf(r.Dist, 1) }

// Searcher bundles the per-search scratch state so that a read-only Graph
// can serve many concurrent searches: each goroutine owns one Searcher.
// Reusing a Searcher across queries avoids reallocating the O(n) arrays.
type Searcher struct {
	g     *Graph
	dist  []float64
	prev  []NodeID
	stamp []uint32 // generation marks so reset is O(1)
	gen   uint32
	queue pq
}

// NewSearcher creates a Searcher bound to g.
func NewSearcher(g *Graph) *Searcher {
	n := g.NumNodes()
	return &Searcher{
		g:     g,
		dist:  make([]float64, n),
		prev:  make([]NodeID, n),
		stamp: make([]uint32, n),
	}
}

func (s *Searcher) reset() {
	s.gen++
	if s.gen == 0 { // wrapped: clear stamps once every 4G searches
		for i := range s.stamp {
			s.stamp[i] = 0
		}
		s.gen = 1
	}
	s.queue = s.queue[:0]
}

func (s *Searcher) seen(v NodeID) bool { return s.stamp[v] == s.gen }

func (s *Searcher) relax(v NodeID, d float64, from NodeID) bool {
	if !s.seen(v) || d < s.dist[v] {
		s.stamp[v] = s.gen
		s.dist[v] = d
		s.prev[v] = from
		return true
	}
	return false
}

func (s *Searcher) buildPath(target NodeID) []NodeID {
	var rev []NodeID
	for v := target; v != InvalidNode; v = s.prev[v] {
		rev = append(rev, v)
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// ShortestPath runs A* from source to target on edge lengths, using the
// haversine distance as the (admissible: every edge is at least as long as
// the straight line) heuristic. It is the routing primitive used when a
// ride offer is created and when a booking is confirmed.
func (s *Searcher) ShortestPath(source, target NodeID) SPResult {
	if source == target {
		return SPResult{Dist: 0, Path: []NodeID{source}}
	}
	s.reset()
	tp := s.g.Point(target)
	h := func(v NodeID) float64 { return geo.Haversine(s.g.Point(v), tp) }

	s.relax(source, 0, InvalidNode)
	s.queue.push(pqItem{node: source, prio: h(source)})
	for s.queue.Len() > 0 {
		it := s.queue.pop()
		v := it.node
		if v == target {
			return SPResult{Dist: s.dist[v], Path: s.buildPath(v)}
		}
		if it.prio > s.dist[v]+h(v)+1e-9 { // stale entry
			continue
		}
		for _, e := range s.g.Out(v) {
			nd := s.dist[v] + e.Length
			if s.relax(e.To, nd, v) {
				s.queue.push(pqItem{node: e.To, prio: nd + h(e.To)})
			}
		}
	}
	return SPResult{Dist: math.Inf(1)}
}

// Visit is the callback of the bounded searches. Returning false stops the
// search early.
type Visit func(node NodeID, dist float64) bool

// DistancesWithin runs a Dijkstra from source over outgoing edges, calling
// visit for every node settled at distance ≤ radius, in increasing
// distance order. It is the workhorse of the discretization pre-processing
// (grid→landmark assignments use a bounded search of radius Δ from each
// landmark over the *reverse* graph; see DistancesWithinReverse).
func (s *Searcher) DistancesWithin(source NodeID, radius float64, visit Visit) {
	s.bounded(source, radius, visit, false)
}

// DistancesWithinReverse is DistancesWithin on the reverse graph: it
// settles the nodes from which source can be reached within radius. Since
// "drive from grid g to landmark l" follows edge directions g→l, the
// per-landmark pre-processing uses the reverse search from l.
func (s *Searcher) DistancesWithinReverse(source NodeID, radius float64, visit Visit) {
	s.bounded(source, radius, visit, true)
}

func (s *Searcher) bounded(source NodeID, radius float64, visit Visit, reverse bool) {
	if radius < 0 {
		return
	}
	s.reset()
	s.relax(source, 0, InvalidNode)
	s.queue.push(pqItem{node: source, prio: 0})
	for s.queue.Len() > 0 {
		it := s.queue.pop()
		v := it.node
		if it.prio > s.dist[v]+1e-9 {
			continue
		}
		if s.dist[v] > radius {
			return
		}
		if !visit(v, s.dist[v]) {
			return
		}
		edges := s.g.Out(v)
		if reverse {
			edges = s.g.In(v)
		}
		for _, e := range edges {
			nd := s.dist[v] + e.Length
			if nd <= radius && s.relax(e.To, nd, v) {
				s.queue.push(pqItem{node: e.To, prio: nd})
			}
		}
	}
}

// DistancesToAll runs an unbounded Dijkstra from source and returns the
// full distance array (+Inf for unreachable nodes). Used to build the
// landmark–landmark distance matrix during pre-processing, where the
// O(n log n) per landmark cost is paid once per region.
func (s *Searcher) DistancesToAll(source NodeID) []float64 {
	out := make([]float64, s.g.NumNodes())
	for i := range out {
		out[i] = math.Inf(1)
	}
	s.bounded(source, math.Inf(1), func(v NodeID, d float64) bool {
		out[v] = d
		return true
	}, false)
	return out
}

// TravelTime converts a path to a free-flow travel time in seconds using
// each edge's speed. It returns an error for non-adjacent steps.
func (g *Graph) TravelTime(path []NodeID) (float64, error) {
	var total float64
	for i := 1; i < len(path); i++ {
		var best float64 = math.Inf(1)
		found := false
		for _, e := range g.out[path[i-1]] {
			if e.To == path[i] {
				t := e.Length / e.Speed
				if t < best {
					best = t
				}
				found = true
			}
		}
		if !found {
			return 0, errNotAdjacent(path[i-1], path[i])
		}
		total += best
	}
	return total, nil
}

type notAdjacentError struct{ from, to NodeID }

func (e notAdjacentError) Error() string {
	return "roadnet: nodes not adjacent in path"
}

func errNotAdjacent(from, to NodeID) error { return notAdjacentError{from, to} }
