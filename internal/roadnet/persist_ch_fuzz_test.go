package roadnet

import (
	"bytes"
	"math"
	"testing"
)

// FuzzReadCH feeds arbitrary bytes to the CH artifact reader: it must
// never panic, and anything it accepts must answer queries that match
// the exact reference — a corrupt hierarchy that loads "successfully"
// but mis-routes is the failure mode the validation exists to prevent.
func FuzzReadCH(f *testing.F) {
	g, _, valid := chArtifact(f)
	plain := NewSearcher(g)
	f.Add(valid)
	f.Add(valid[:27])
	f.Add(valid[:len(valid)/2])
	trunc := append([]byte(nil), valid...)
	trunc[9] ^= 0xff
	f.Add(trunc)
	f.Add([]byte("XARCHv01 not really"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		ch, err := LoadCH(bytes.NewReader(data), g)
		if err != nil {
			return
		}
		cs := ch.NewSearcher()
		for _, pair := range [][2]NodeID{{0, NodeID(g.NumNodes() - 1)}, {3, 60}, {100, 17}} {
			want := plain.ShortestPath(pair[0], pair[1])
			got := cs.ShortestPath(pair[0], pair[1])
			if want.Reachable() != got.Reachable() ||
				(want.Reachable() && math.Abs(want.Dist-got.Dist) > 1e-6) {
				t.Fatalf("accepted artifact mis-routes %d→%d: %v vs %v", pair[0], pair[1], got.Dist, want.Dist)
			}
		}
	})
}
