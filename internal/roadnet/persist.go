package roadnet

import (
	"bufio"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/fnv"
	"io"
	"math"

	"xar/internal/geo"
)

// graphSnapshot is the gob wire format of a Graph.
type graphSnapshot struct {
	Version int
	Points  []geo.Point
	From    []int32
	To      []int32
	Length  []float64
	Speed   []float64
	Class   []uint8
}

const snapshotVersion = 1

// Save serializes the graph. Together with Load it lets deployments run
// the expensive pre-processing once per region (the paper's model) and
// ship the artifact.
func (g *Graph) Save(w io.Writer) error {
	snap := graphSnapshot{
		Version: snapshotVersion,
		Points:  g.pts,
		From:    make([]int32, 0, g.edgeCnt),
		To:      make([]int32, 0, g.edgeCnt),
		Length:  make([]float64, 0, g.edgeCnt),
		Speed:   make([]float64, 0, g.edgeCnt),
		Class:   make([]uint8, 0, g.edgeCnt),
	}
	for from, edges := range g.out {
		for _, e := range edges {
			snap.From = append(snap.From, int32(from))
			snap.To = append(snap.To, int32(e.To))
			snap.Length = append(snap.Length, e.Length)
			snap.Speed = append(snap.Speed, e.Speed)
			snap.Class = append(snap.Class, uint8(e.Class))
		}
	}
	return gob.NewEncoder(w).Encode(&snap)
}

// LoadGraph deserializes a graph written by Save.
func LoadGraph(r io.Reader) (*Graph, error) {
	var snap graphSnapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("roadnet: decode graph: %w", err)
	}
	if snap.Version != snapshotVersion {
		return nil, fmt.Errorf("roadnet: unsupported snapshot version %d", snap.Version)
	}
	if len(snap.From) != len(snap.To) || len(snap.From) != len(snap.Length) ||
		len(snap.From) != len(snap.Speed) || len(snap.From) != len(snap.Class) {
		return nil, fmt.Errorf("roadnet: corrupt snapshot: ragged edge arrays")
	}
	g := &Graph{}
	for _, p := range snap.Points {
		if !p.Valid() {
			return nil, fmt.Errorf("roadnet: corrupt snapshot: invalid point %v", p)
		}
		g.AddNode(p)
	}
	for i := range snap.From {
		if err := g.AddEdge(NodeID(snap.From[i]), NodeID(snap.To[i]),
			snap.Length[i], snap.Speed[i], RoadClass(snap.Class[i])); err != nil {
			return nil, fmt.Errorf("roadnet: corrupt snapshot: %w", err)
		}
	}
	return g, nil
}

// chMagic is the header of the persisted CH format; the trailing byte
// is the format version. Bump it on any wire change.
var chMagic = [8]byte{'X', 'A', 'R', 'C', 'H', 'v', '0', '1'}

// noMiddleWire encodes "original edge" in a persisted arc.
const noMiddleWire = ^uint32(0)

// SaveCH serializes a contraction hierarchy: a fixed header (magic +
// graph fingerprint + node/arc/core counts), the rank permutation, then
// the flat arc list. Little-endian, versioned, rejected structurally by
// LoadCH — the CH twin of the discretization artifact, so deployments
// preprocess once per region and ship the file. The core distance
// table is not persisted: it is fully determined by the arcs and
// recomputed on load in milliseconds.
func (ch *CH) SaveCH(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(chMagic[:]); err != nil {
		return err
	}
	var buf [20]byte
	binary.LittleEndian.PutUint64(buf[:8], ch.g.Fingerprint())
	binary.LittleEndian.PutUint32(buf[8:12], uint32(len(ch.rank)))
	binary.LittleEndian.PutUint32(buf[12:16], uint32(ch.NumArcs()))
	binary.LittleEndian.PutUint32(buf[16:20], uint32(ch.coreK))
	if _, err := bw.Write(buf[:20]); err != nil {
		return err
	}
	for _, r := range ch.rank {
		binary.LittleEndian.PutUint32(buf[:4], uint32(r))
		if _, err := bw.Write(buf[:4]); err != nil {
			return err
		}
	}
	writeArc := func(from, to, mid NodeID, weight float64) error {
		binary.LittleEndian.PutUint32(buf[:4], uint32(from))
		binary.LittleEndian.PutUint32(buf[4:8], uint32(to))
		midW := noMiddleWire
		if mid != noMiddle {
			midW = uint32(mid)
		}
		binary.LittleEndian.PutUint32(buf[8:12], midW)
		binary.LittleEndian.PutUint64(buf[12:20], math.Float64bits(weight))
		_, err := bw.Write(buf[:20])
		return err
	}
	for v := range ch.rank {
		for i := ch.upOff[v]; i < ch.upOff[v+1]; i++ {
			if err := writeArc(NodeID(v), ch.upTo[i], ch.upX[i].Mid, ch.upW[i]); err != nil {
				return err
			}
		}
	}
	for v := range ch.rank {
		// The down arrays store arc downTo[i]→v; persist it in from→to
		// orientation.
		for i := ch.downOff[v]; i < ch.downOff[v+1]; i++ {
			if err := writeArc(ch.downTo[i], NodeID(v), ch.downX[i].Mid, ch.downW[i]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// LoadCH deserializes a hierarchy written by SaveCH and binds it to g,
// which must be the graph it was built on (checked by fingerprint).
// Every structural invariant is re-validated — rank permutation, arc
// endpoint bounds, finite positive weights, shortcut middles ranked
// below both endpoints with resolvable constituent arcs — so corrupt or
// truncated input is rejected instead of corrupting later queries.
func LoadCH(r io.Reader, g *Graph) (*CH, error) {
	br := bufio.NewReader(r)
	var head [28]byte
	if _, err := io.ReadFull(br, head[:]); err != nil {
		return nil, fmt.Errorf("roadnet: CH header: %w", err)
	}
	if [8]byte(head[:8]) != chMagic {
		return nil, fmt.Errorf("roadnet: not a CH artifact (bad magic %q)", head[:8])
	}
	fp := binary.LittleEndian.Uint64(head[8:16])
	if got := g.Fingerprint(); got != fp {
		return nil, fmt.Errorf("roadnet: CH artifact built on a different road graph (fingerprint %x, graph %x)", fp, got)
	}
	n := int(binary.LittleEndian.Uint32(head[16:20]))
	m := int(binary.LittleEndian.Uint32(head[20:24]))
	coreK := int(binary.LittleEndian.Uint32(head[24:28]))
	if n != g.NumNodes() {
		return nil, fmt.Errorf("roadnet: corrupt CH artifact: %d nodes for a %d-node graph", n, g.NumNodes())
	}
	if coreK < 1 || coreK > n {
		return nil, fmt.Errorf("roadnet: corrupt CH artifact: core size %d for %d nodes", coreK, n)
	}
	rank := make([]int32, n)
	seen := make([]bool, n)
	var buf [20]byte
	for v := 0; v < n; v++ {
		if _, err := io.ReadFull(br, buf[:4]); err != nil {
			return nil, fmt.Errorf("roadnet: CH rank table: %w", err)
		}
		rv := binary.LittleEndian.Uint32(buf[:4])
		if rv >= uint32(n) || seen[rv] {
			return nil, fmt.Errorf("roadnet: corrupt CH artifact: rank table is not a permutation (node %d → %d)", v, rv)
		}
		seen[rv] = true
		rank[v] = int32(rv)
	}
	ch := &CH{
		g:     g,
		rank:  rank,
		coreK: coreK,
	}
	up := make([][]chArc, n)
	down := make([][]chArc, n)
	for i := 0; i < m; i++ {
		if _, err := io.ReadFull(br, buf[:20]); err != nil {
			return nil, fmt.Errorf("roadnet: CH arc %d/%d: %w", i, m, err)
		}
		from := binary.LittleEndian.Uint32(buf[:4])
		to := binary.LittleEndian.Uint32(buf[4:8])
		midRaw := binary.LittleEndian.Uint32(buf[8:12])
		weight := math.Float64frombits(binary.LittleEndian.Uint64(buf[12:20]))
		if from >= uint32(n) || to >= uint32(n) || from == to {
			return nil, fmt.Errorf("roadnet: corrupt CH artifact: arc %d endpoints %d→%d out of range", i, from, to)
		}
		if !(weight > 0) || math.IsInf(weight, 0) {
			return nil, fmt.Errorf("roadnet: corrupt CH artifact: arc %d weight %v", i, weight)
		}
		mid := noMiddle
		if midRaw != noMiddleWire {
			if midRaw >= uint32(n) {
				return nil, fmt.Errorf("roadnet: corrupt CH artifact: arc %d middle %d out of range", i, midRaw)
			}
			if rank[midRaw] >= rank[from] || rank[midRaw] >= rank[to] {
				return nil, fmt.Errorf("roadnet: corrupt CH artifact: arc %d middle %d not below its endpoints", i, midRaw)
			}
			if int(rank[midRaw]) >= n-coreK {
				return nil, fmt.Errorf("roadnet: corrupt CH artifact: arc %d middle %d inside the uncontracted core", i, midRaw)
			}
			mid = NodeID(midRaw)
			ch.shortcuts++
		}
		a := chArc{Middle: mid, Weight: weight}
		if rank[to] > rank[from] {
			a.To = NodeID(to)
			up[from] = append(up[from], a)
		} else {
			a.To = NodeID(from)
			down[to] = append(down[to], a)
		}
	}
	// setArcs re-validates the deep structure: duplicate arcs, original
	// arcs whose weight is not the graph's edge length, and shortcuts
	// whose middle has no constituent arcs (or whose weight is not
	// their sum) are all rejected — any of them would corrupt query
	// distances or path unpacking.
	if err := ch.setArcs(up, down); err != nil {
		return nil, fmt.Errorf("roadnet: corrupt CH artifact: %w", err)
	}
	ch.finalizeCore()
	return ch, nil
}

// Fingerprint hashes the graph's structure and geometry. Artifacts built
// on top of a graph (the discretization) embed it so loading against a
// different graph fails fast instead of corrupting distances.
func (g *Graph) Fingerprint() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	writeF := func(f float64) {
		bits := math.Float64bits(f)
		for i := 0; i < 8; i++ {
			buf[i] = byte(bits >> (8 * i))
		}
		h.Write(buf[:])
	}
	writeF(float64(g.NumNodes()))
	writeF(float64(g.NumEdges()))
	for _, p := range g.pts {
		writeF(p.Lat)
		writeF(p.Lng)
	}
	for from, edges := range g.out {
		for _, e := range edges {
			writeF(float64(from))
			writeF(float64(e.To))
			writeF(e.Length)
		}
	}
	return h.Sum64()
}
