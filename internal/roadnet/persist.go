package roadnet

import (
	"encoding/gob"
	"fmt"
	"hash/fnv"
	"io"
	"math"

	"xar/internal/geo"
)

// graphSnapshot is the gob wire format of a Graph.
type graphSnapshot struct {
	Version int
	Points  []geo.Point
	From    []int32
	To      []int32
	Length  []float64
	Speed   []float64
	Class   []uint8
}

const snapshotVersion = 1

// Save serializes the graph. Together with Load it lets deployments run
// the expensive pre-processing once per region (the paper's model) and
// ship the artifact.
func (g *Graph) Save(w io.Writer) error {
	snap := graphSnapshot{
		Version: snapshotVersion,
		Points:  g.pts,
		From:    make([]int32, 0, g.edgeCnt),
		To:      make([]int32, 0, g.edgeCnt),
		Length:  make([]float64, 0, g.edgeCnt),
		Speed:   make([]float64, 0, g.edgeCnt),
		Class:   make([]uint8, 0, g.edgeCnt),
	}
	for from, edges := range g.out {
		for _, e := range edges {
			snap.From = append(snap.From, int32(from))
			snap.To = append(snap.To, int32(e.To))
			snap.Length = append(snap.Length, e.Length)
			snap.Speed = append(snap.Speed, e.Speed)
			snap.Class = append(snap.Class, uint8(e.Class))
		}
	}
	return gob.NewEncoder(w).Encode(&snap)
}

// LoadGraph deserializes a graph written by Save.
func LoadGraph(r io.Reader) (*Graph, error) {
	var snap graphSnapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("roadnet: decode graph: %w", err)
	}
	if snap.Version != snapshotVersion {
		return nil, fmt.Errorf("roadnet: unsupported snapshot version %d", snap.Version)
	}
	if len(snap.From) != len(snap.To) || len(snap.From) != len(snap.Length) ||
		len(snap.From) != len(snap.Speed) || len(snap.From) != len(snap.Class) {
		return nil, fmt.Errorf("roadnet: corrupt snapshot: ragged edge arrays")
	}
	g := &Graph{}
	for _, p := range snap.Points {
		if !p.Valid() {
			return nil, fmt.Errorf("roadnet: corrupt snapshot: invalid point %v", p)
		}
		g.AddNode(p)
	}
	for i := range snap.From {
		if err := g.AddEdge(NodeID(snap.From[i]), NodeID(snap.To[i]),
			snap.Length[i], snap.Speed[i], RoadClass(snap.Class[i])); err != nil {
			return nil, fmt.Errorf("roadnet: corrupt snapshot: %w", err)
		}
	}
	return g, nil
}

// Fingerprint hashes the graph's structure and geometry. Artifacts built
// on top of a graph (the discretization) embed it so loading against a
// different graph fails fast instead of corrupting distances.
func (g *Graph) Fingerprint() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	writeF := func(f float64) {
		bits := math.Float64bits(f)
		for i := 0; i < 8; i++ {
			buf[i] = byte(bits >> (8 * i))
		}
		h.Write(buf[:])
	}
	writeF(float64(g.NumNodes()))
	writeF(float64(g.NumEdges()))
	for _, p := range g.pts {
		writeF(p.Lat)
		writeF(p.Lng)
	}
	for from, edges := range g.out {
		for _, e := range edges {
			writeF(float64(from))
			writeF(float64(e.To))
			writeF(e.Length)
		}
	}
	return h.Sum64()
}
