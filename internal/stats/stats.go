// Package stats provides the small statistics toolkit used by the
// simulation and benchmark harness: online accumulators, percentiles,
// CDF evaluation and fixed-width histogram/table rendering for the
// figure-reproduction output.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// Sample accumulates float64 observations. The zero value is ready to use.
type Sample struct {
	xs     []float64
	sum    float64
	sorted bool
}

// Add records one observation.
func (s *Sample) Add(x float64) {
	s.xs = append(s.xs, x)
	s.sum += x
	s.sorted = false
}

// AddDuration records a duration in milliseconds, the unit the paper's
// latency figures use.
func (s *Sample) AddDuration(d time.Duration) {
	s.Add(float64(d) / float64(time.Millisecond))
}

// N returns the number of observations.
func (s *Sample) N() int { return len(s.xs) }

// Sum returns the sum of observations.
func (s *Sample) Sum() float64 { return s.sum }

// Mean returns the arithmetic mean, or NaN for an empty sample.
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return math.NaN()
	}
	return s.sum / float64(len(s.xs))
}

// Min returns the smallest observation, or NaN if empty.
func (s *Sample) Min() float64 {
	s.ensureSorted()
	if len(s.xs) == 0 {
		return math.NaN()
	}
	return s.xs[0]
}

// Max returns the largest observation, or NaN if empty.
func (s *Sample) Max() float64 {
	s.ensureSorted()
	if len(s.xs) == 0 {
		return math.NaN()
	}
	return s.xs[len(s.xs)-1]
}

// Stddev returns the population standard deviation, or NaN if empty.
func (s *Sample) Stddev() float64 {
	if len(s.xs) == 0 {
		return math.NaN()
	}
	mean := s.Mean()
	var ss float64
	for _, x := range s.xs {
		d := x - mean
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(s.xs)))
}

func (s *Sample) ensureSorted() {
	if !s.sorted {
		sort.Float64s(s.xs)
		s.sorted = true
	}
}

// Percentile returns the p-th percentile (p in [0,100]) using linear
// interpolation between order statistics. NaN for an empty sample; p is
// clamped to [0,100].
func (s *Sample) Percentile(p float64) float64 {
	if len(s.xs) == 0 {
		return math.NaN()
	}
	s.ensureSorted()
	if p <= 0 {
		return s.xs[0]
	}
	if p >= 100 {
		return s.xs[len(s.xs)-1]
	}
	rank := p / 100 * float64(len(s.xs)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s.xs[lo]
	}
	frac := rank - float64(lo)
	return s.xs[lo]*(1-frac) + s.xs[hi]*frac
}

// CDF returns the empirical fraction of observations ≤ x. Zero for an
// empty sample.
func (s *Sample) CDF(x float64) float64 {
	if len(s.xs) == 0 {
		return 0
	}
	s.ensureSorted()
	// First index with value > x.
	i := sort.SearchFloat64s(s.xs, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(s.xs))
}

// Summary renders "n=… mean=… p50=… p95=… p99=… max=…" for log lines.
func (s *Sample) Summary(unit string) string {
	if len(s.xs) == 0 {
		return "n=0"
	}
	return fmt.Sprintf("n=%d mean=%.3f%s p50=%.3f%s p95=%.3f%s p99=%.3f%s max=%.3f%s",
		s.N(), s.Mean(), unit, s.Percentile(50), unit,
		s.Percentile(95), unit, s.Percentile(99), unit, s.Max(), unit)
}

// Table is a simple fixed-width text table used by cmd/xarbench to print
// the rows/series corresponding to each paper figure.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		case time.Duration:
			row[i] = fmt.Sprintf("%.3fms", float64(v)/float64(time.Millisecond))
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

func formatFloat(v float64) string {
	switch {
	case math.IsNaN(v):
		return "-"
	case v != 0 && math.Abs(v) < 0.01:
		return fmt.Sprintf("%.2e", v)
	case math.Abs(v) >= 1000:
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// Histogram renders an ASCII histogram of the sample over nBins equal
// bins, used for the CDF-style figures.
func (s *Sample) Histogram(nBins int, width int) string {
	if len(s.xs) == 0 || nBins <= 0 {
		return "(empty)\n"
	}
	s.ensureSorted()
	lo, hi := s.xs[0], s.xs[len(s.xs)-1]
	if hi == lo {
		hi = lo + 1
	}
	counts := make([]int, nBins)
	for _, x := range s.xs {
		b := int(float64(nBins) * (x - lo) / (hi - lo))
		if b >= nBins {
			b = nBins - 1
		}
		counts[b]++
	}
	maxC := 0
	for _, c := range counts {
		if c > maxC {
			maxC = c
		}
	}
	var sb strings.Builder
	for i, c := range counts {
		binLo := lo + float64(i)*(hi-lo)/float64(nBins)
		bar := 0
		if maxC > 0 {
			bar = c * width / maxC
		}
		fmt.Fprintf(&sb, "%12.3f | %-*s %d\n", binLo, width, strings.Repeat("#", bar), c)
	}
	return sb.String()
}
