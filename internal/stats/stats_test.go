package stats

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestEmptySample(t *testing.T) {
	var s Sample
	if s.N() != 0 || s.Sum() != 0 {
		t.Fatal("zero-value sample must be empty")
	}
	for _, v := range []float64{s.Mean(), s.Min(), s.Max(), s.Stddev(), s.Percentile(50)} {
		if !math.IsNaN(v) {
			t.Fatalf("empty-sample statistic = %v, want NaN", v)
		}
	}
	if s.CDF(10) != 0 {
		t.Fatal("empty-sample CDF must be 0")
	}
	if s.Summary("ms") != "n=0" {
		t.Fatalf("empty summary = %q", s.Summary("ms"))
	}
}

func TestBasicStatistics(t *testing.T) {
	var s Sample
	for _, x := range []float64{4, 2, 8, 6} {
		s.Add(x)
	}
	if s.N() != 4 || s.Sum() != 20 || s.Mean() != 5 {
		t.Fatalf("n=%d sum=%v mean=%v", s.N(), s.Sum(), s.Mean())
	}
	if s.Min() != 2 || s.Max() != 8 {
		t.Fatalf("min=%v max=%v", s.Min(), s.Max())
	}
	want := math.Sqrt((9 + 1 + 1 + 9) / 4.0) // population stddev
	if math.Abs(s.Stddev()-want) > 1e-12 {
		t.Fatalf("stddev=%v want %v", s.Stddev(), want)
	}
}

func TestAddAfterSortKeepsCorrectness(t *testing.T) {
	var s Sample
	s.Add(5)
	_ = s.Min() // forces a sort
	s.Add(1)    // must invalidate sorted flag
	if s.Min() != 1 {
		t.Fatalf("min after late add = %v, want 1", s.Min())
	}
}

func TestPercentile(t *testing.T) {
	var s Sample
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	cases := []struct{ p, want float64 }{
		{0, 1}, {100, 100}, {50, 50.5}, {-5, 1}, {200, 100},
	}
	for _, tc := range cases {
		if got := s.Percentile(tc.p); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("p%.0f = %v, want %v", tc.p, got, tc.want)
		}
	}
}

func TestPercentileMonotonic(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	var s Sample
	for i := 0; i < 1000; i++ {
		s.Add(r.NormFloat64() * 10)
	}
	prev := math.Inf(-1)
	for p := 0.0; p <= 100; p += 2.5 {
		v := s.Percentile(p)
		if v < prev {
			t.Fatalf("percentile not monotone at p=%v: %v < %v", p, v, prev)
		}
		prev = v
	}
}

func TestCDFAgainstBruteForce(t *testing.T) {
	f := func(raw []float64, probe float64) bool {
		if len(raw) == 0 {
			return true
		}
		var s Sample
		for _, x := range raw {
			if math.IsNaN(x) {
				return true
			}
			s.Add(x)
		}
		count := 0
		for _, x := range raw {
			if x <= probe {
				count++
			}
		}
		want := float64(count) / float64(len(raw))
		return math.Abs(s.CDF(probe)-want) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCDFBoundary(t *testing.T) {
	var s Sample
	for _, x := range []float64{1, 2, 2, 3} {
		s.Add(x)
	}
	if got := s.CDF(2); got != 0.75 {
		t.Fatalf("CDF(2) = %v, want 0.75 (inclusive)", got)
	}
	if got := s.CDF(0.5); got != 0 {
		t.Fatalf("CDF(0.5) = %v, want 0", got)
	}
	if got := s.CDF(3); got != 1 {
		t.Fatalf("CDF(3) = %v, want 1", got)
	}
}

func TestPercentileMatchesSortedIndex(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	var s Sample
	raw := make([]float64, 501)
	for i := range raw {
		raw[i] = r.Float64() * 1000
		s.Add(raw[i])
	}
	sort.Float64s(raw)
	// With n-1 spacing, p50 of 501 points is exactly raw[250].
	if got := s.Percentile(50); got != raw[250] {
		t.Fatalf("p50 = %v, want %v", got, raw[250])
	}
}

func TestAddDuration(t *testing.T) {
	var s Sample
	s.AddDuration(1500 * time.Microsecond)
	if got := s.Max(); math.Abs(got-1.5) > 1e-12 {
		t.Fatalf("1.5ms recorded as %v", got)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("eps", "clusters", "time")
	tb.AddRow(0.5, 4921, 12*time.Millisecond)
	tb.AddRow(2.0, 713, 350*time.Microsecond)
	out := tb.String()
	if !strings.Contains(out, "eps") || !strings.Contains(out, "clusters") {
		t.Fatalf("missing headers:\n%s", out)
	}
	if !strings.Contains(out, "4921") {
		t.Fatalf("missing int cell:\n%s", out)
	}
	if !strings.Contains(out, "12.000ms") || !strings.Contains(out, "0.350ms") {
		t.Fatalf("duration formatting wrong:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("want header+rule+2 rows, got %d lines", len(lines))
	}
}

func TestFormatFloat(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{math.NaN(), "-"},
		{0.001, "1.00e-03"},
		{12345, "12345"},
		{3.14159, "3.142"},
		{0, "0.000"},
	}
	for _, tc := range cases {
		if got := formatFloat(tc.in); got != tc.want {
			t.Errorf("formatFloat(%v) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestHistogram(t *testing.T) {
	var s Sample
	for i := 0; i < 100; i++ {
		s.Add(float64(i % 10))
	}
	h := s.Histogram(10, 40)
	if strings.Count(h, "\n") != 10 {
		t.Fatalf("want 10 histogram lines:\n%s", h)
	}
	var e Sample
	if e.Histogram(10, 40) != "(empty)\n" {
		t.Fatal("empty histogram")
	}
	var one Sample
	one.Add(5)
	if !strings.Contains(one.Histogram(4, 10), "#") {
		t.Fatal("single-value histogram should still draw a bar")
	}
}

func TestSummaryFormat(t *testing.T) {
	var s Sample
	for i := 1; i <= 10; i++ {
		s.Add(float64(i))
	}
	sum := s.Summary("ms")
	for _, frag := range []string{"n=10", "mean=5.500ms", "max=10.000ms"} {
		if !strings.Contains(sum, frag) {
			t.Fatalf("summary %q missing %q", sum, frag)
		}
	}
}
